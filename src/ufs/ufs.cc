#include "src/ufs/ufs.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "src/common/serialize.h"
#include "src/storage/block_journal.h"
#include "src/vfs/vnode.h"

namespace ficus::ufs {

namespace {

using storage::kBlockSize;

uint32_t DivRoundUp(uint32_t a, uint32_t b) { return (a + b - 1) / b; }

Status SerializeInode(const Inode& inode, uint8_t* out) {
  if (inode.ext.size() > kMaxInodeExt) {
    return NoSpaceError("inode extension area overflow");
  }
  std::vector<uint8_t> buf;
  buf.reserve(kInodeSize);
  ByteWriter w(buf);
  w.PutU8(static_cast<uint8_t>(inode.type));
  w.PutU32(inode.mode);
  w.PutU32(inode.uid);
  w.PutU32(inode.gid);
  w.PutU32(inode.nlink);
  w.PutU64(inode.size);
  w.PutU64(inode.mtime);
  w.PutU64(inode.ctime);
  for (uint32_t d : inode.direct) {
    w.PutU32(d);
  }
  w.PutU32(inode.indirect);
  w.PutU32(inode.double_indirect);
  w.PutU16(static_cast<uint16_t>(inode.ext.size()));
  buf.insert(buf.end(), inode.ext.begin(), inode.ext.end());
  buf.resize(kInodeSize, 0);
  std::memcpy(out, buf.data(), kInodeSize);
  return OkStatus();
}

Status DeserializeInode(const uint8_t* in, Inode& inode) {
  std::vector<uint8_t> buf(in, in + kInodeSize);
  ByteReader r(buf);
  FICUS_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  if (type > static_cast<uint8_t>(FileType::kSymlink)) {
    return CorruptError("bad inode type");
  }
  inode.type = static_cast<FileType>(type);
  FICUS_ASSIGN_OR_RETURN(inode.mode, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(inode.uid, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(inode.gid, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(inode.nlink, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(inode.size, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(inode.mtime, r.GetU64());
  FICUS_ASSIGN_OR_RETURN(inode.ctime, r.GetU64());
  for (uint32_t& d : inode.direct) {
    FICUS_ASSIGN_OR_RETURN(d, r.GetU32());
  }
  FICUS_ASSIGN_OR_RETURN(inode.indirect, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(inode.double_indirect, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(uint16_t ext_len, r.GetU16());
  if (ext_len > kMaxInodeExt) {
    return CorruptError("inode extension length out of range");
  }
  inode.ext.clear();
  if (ext_len > 0) {
    for (uint16_t i = 0; i < ext_len; ++i) {
      FICUS_ASSIGN_OR_RETURN(uint8_t b, r.GetU8());
      inode.ext.push_back(b);
    }
  }
  return OkStatus();
}

// Parses one flat record run: u32 ino | u8 type | u16 name_len | name.
// Shared by the legacy whole-file format and the per-bucket record runs
// of the hashed format.
Status ParseDirRecords(ByteReader& r, std::vector<UfsDirEntry>& entries) {
  while (!r.AtEnd()) {
    UfsDirEntry e;
    FICUS_ASSIGN_OR_RETURN(e.ino, r.GetU32());
    FICUS_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
    e.type = static_cast<FileType>(type);
    FICUS_ASSIGN_OR_RETURN(e.name, r.GetString());
    entries.push_back(std::move(e));
  }
  return OkStatus();
}

// Serializes entries in the hashed on-disk format (see ufs.h): header,
// bucket table, then per-bucket record runs.
std::vector<uint8_t> SerializeDir(const std::vector<UfsDirEntry>& entries) {
  uint32_t buckets = UfsDirBucketCount(entries.size());
  std::vector<std::vector<uint8_t>> runs(buckets);
  for (const auto& e : entries) {
    ByteWriter w(runs[UfsNameHash(e.name) & (buckets - 1)]);
    w.PutU32(e.ino);
    w.PutU8(static_cast<uint8_t>(e.type));
    w.PutString(e.name);
  }
  std::vector<uint8_t> out;
  ByteWriter w(out);
  w.PutU32(kUfsDirMagic);
  w.PutU32(buckets);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  w.PutU32(0);
  uint32_t offset = 0;
  for (const auto& run : runs) {
    w.PutU32(offset);
    w.PutU32(static_cast<uint32_t>(run.size()));
    offset += static_cast<uint32_t>(run.size());
  }
  for (const auto& run : runs) {
    out.insert(out.end(), run.begin(), run.end());
  }
  return out;
}

bool IsHashedDir(const std::vector<uint8_t>& data) {
  if (data.size() < kUfsDirHeaderBytes) {
    return false;
  }
  uint32_t first = 0;
  std::memcpy(&first, data.data(), 4);
  return first == kUfsDirMagic;
}

// Accepts both formats; legacy linear images parse until their next
// mutation rewrites them hashed.
StatusOr<std::vector<UfsDirEntry>> DeserializeDir(const std::vector<uint8_t>& data) {
  std::vector<UfsDirEntry> entries;
  if (!IsHashedDir(data)) {
    ByteReader r(data);
    FICUS_RETURN_IF_ERROR(ParseDirRecords(r, entries));
    return entries;
  }
  ByteReader r(data);
  FICUS_RETURN_IF_ERROR(r.GetU32().status());  // magic
  FICUS_ASSIGN_OR_RETURN(uint32_t buckets, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  FICUS_RETURN_IF_ERROR(r.GetU32().status());  // reserved
  if (buckets == 0 || (buckets & (buckets - 1)) != 0 ||
      buckets > data.size() / 8 + 1) {
    return CorruptError("hashed directory bucket count invalid");
  }
  size_t record_area = kUfsDirHeaderBytes + static_cast<size_t>(buckets) * 8;
  if (record_area > data.size()) {
    return CorruptError("hashed directory bucket table truncated");
  }
  std::vector<uint8_t> run;
  for (uint32_t b = 0; b < buckets; ++b) {
    FICUS_ASSIGN_OR_RETURN(uint32_t offset, r.GetU32());
    FICUS_ASSIGN_OR_RETURN(uint32_t length, r.GetU32());
    if (length == 0) {
      continue;
    }
    if (record_area + offset + length > data.size() || offset + length < offset) {
      return CorruptError("hashed directory bucket out of range");
    }
    run.assign(data.begin() + static_cast<ptrdiff_t>(record_area + offset),
               data.begin() + static_cast<ptrdiff_t>(record_area + offset + length));
    ByteReader rr(run);
    FICUS_RETURN_IF_ERROR(ParseDirRecords(rr, entries));
  }
  if (entries.size() != count) {
    return CorruptError("hashed directory entry count mismatch");
  }
  return entries;
}

// Structural validation of one directory image for fsck: both formats
// must parse, and a hashed image must additionally place every record in
// the bucket its name hashes to with an honest header count — that is
// what DirHashLookup's one-bucket read relies on.
void ValidateDirImage(InodeNum ino, const std::vector<uint8_t>& data,
                      std::vector<std::string>& problems) {
  auto report = [&](const std::string& what) {
    problems.push_back("directory inode " + std::to_string(ino) + ": " + what);
  };
  if (!IsHashedDir(data)) {
    // Legacy linear format: valid as long as it parses (it is upgraded
    // in place by the next mutation).
    std::vector<UfsDirEntry> ignored;
    ByteReader r(data);
    if (!ParseDirRecords(r, ignored).ok()) {
      report("legacy records corrupt");
    }
    return;
  }
  ByteReader r(data);
  (void)r.GetU32();
  auto buckets_or = r.GetU32();
  auto count_or = r.GetU32();
  (void)r.GetU32();
  if (!buckets_or.ok() || !count_or.ok()) {
    report("header truncated");
    return;
  }
  uint32_t buckets = *buckets_or;
  uint32_t count = *count_or;
  if (buckets == 0 || (buckets & (buckets - 1)) != 0) {
    report("bucket count " + std::to_string(buckets) + " is not a power of two");
    return;
  }
  size_t record_area = kUfsDirHeaderBytes + static_cast<size_t>(buckets) * 8;
  if (record_area > data.size()) {
    report("bucket table extends past end of file");
    return;
  }
  uint32_t expected_offset = 0;
  size_t seen = 0;
  for (uint32_t b = 0; b < buckets; ++b) {
    auto offset = r.GetU32();
    auto length = r.GetU32();
    if (!offset.ok() || !length.ok()) {
      report("bucket table truncated");
      return;
    }
    if (*offset != expected_offset) {
      report("bucket " + std::to_string(b) + " offset " + std::to_string(*offset) +
             " != expected " + std::to_string(expected_offset));
      return;
    }
    if (record_area + *offset + *length > data.size()) {
      report("bucket " + std::to_string(b) + " run out of range");
      return;
    }
    std::vector<uint8_t> run(
        data.begin() + static_cast<ptrdiff_t>(record_area + *offset),
        data.begin() + static_cast<ptrdiff_t>(record_area + *offset + *length));
    ByteReader rr(run);
    std::vector<UfsDirEntry> in_bucket;
    if (!ParseDirRecords(rr, in_bucket).ok()) {
      report("bucket " + std::to_string(b) + " records corrupt");
      return;
    }
    for (const auto& e : in_bucket) {
      if ((UfsNameHash(e.name) & (buckets - 1)) != b) {
        report("entry '" + e.name + "' stored in bucket " + std::to_string(b) +
               " but hashes to bucket " +
               std::to_string(UfsNameHash(e.name) & (buckets - 1)));
      }
    }
    seen += in_bucket.size();
    expected_offset = *offset + *length;
  }
  if (record_area + expected_offset != data.size()) {
    report("record area has " +
           std::to_string(data.size() - record_area - expected_offset) +
           " trailing bytes");
  }
  if (seen != count) {
    report("header entry count " + std::to_string(count) + " != stored " +
           std::to_string(seen));
  }
}

}  // namespace

uint32_t UfsNameHash(std::string_view name) {
  uint32_t h = 2166136261u;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

uint32_t UfsDirBucketCount(size_t entry_count) {
  uint32_t buckets = 1;
  while (buckets < 65536 && static_cast<size_t>(buckets) * 8 < entry_count) {
    buckets <<= 1;
  }
  return buckets;
}

Ufs::Ufs(storage::BufferCache* cache, const Clock* clock) : cache_(cache), clock_(clock) {}

Status Ufs::CheckMounted() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!mounted_) {
    return InternalError("filesystem not mounted");
  }
  return OkStatus();
}

Status Ufs::WriteSuperBlock() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<uint8_t> block;
  block.reserve(kBlockSize);
  ByteWriter w(block);
  w.PutU32(sb_.magic);
  w.PutU32(sb_.block_count);
  w.PutU32(sb_.inode_count);
  w.PutU32(sb_.inode_bitmap_start);
  w.PutU32(sb_.inode_bitmap_blocks);
  w.PutU32(sb_.block_bitmap_start);
  w.PutU32(sb_.block_bitmap_blocks);
  w.PutU32(sb_.inode_table_start);
  w.PutU32(sb_.inode_table_blocks);
  w.PutU32(sb_.data_start);
  w.PutU32(sb_.free_blocks);
  w.PutU32(sb_.free_inodes);
  w.PutU32(sb_.journal_start);
  w.PutU32(sb_.journal_blocks);
  block.resize(kBlockSize, 0);
  return cache_->Write(0, block);
}

Status Ufs::Format(uint32_t inode_count) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint32_t block_count = cache_->device()->block_count();
  if (inode_count == 0 || block_count < 16) {
    return InvalidArgumentError("device too small to format");
  }
  dir_index_.clear();
  sb_ = SuperBlock{};
  sb_.block_count = block_count;
  sb_.inode_count = inode_count;
  sb_.inode_bitmap_start = 1;
  sb_.inode_bitmap_blocks = DivRoundUp(DivRoundUp(inode_count, 8), kBlockSize);
  sb_.block_bitmap_start = sb_.inode_bitmap_start + sb_.inode_bitmap_blocks;
  sb_.block_bitmap_blocks = DivRoundUp(DivRoundUp(block_count, 8), kBlockSize);
  sb_.inode_table_start = sb_.block_bitmap_start + sb_.block_bitmap_blocks;
  sb_.inode_table_blocks = DivRoundUp(inode_count, kInodesPerBlock);
  // Reserve a redo-journal region between the inode table and the data
  // area when the device can spare it (the journal plus a like-sized data
  // area); tiny test devices simply go without and RemapCommit reports
  // kNotSupported.
  uint32_t after_tables = sb_.inode_table_start + sb_.inode_table_blocks;
  constexpr uint32_t kJournalRegionBlocks = 65;  // 1 intent + 64 image slots
  if (after_tables + 2 * kJournalRegionBlocks <= block_count) {
    sb_.journal_start = after_tables;
    sb_.journal_blocks = kJournalRegionBlocks;
  }
  sb_.data_start = after_tables + sb_.journal_blocks;
  if (sb_.data_start >= block_count) {
    return NoSpaceError("metadata exceeds device size");
  }
  sb_.free_blocks = block_count - sb_.data_start;
  sb_.free_inodes = inode_count - 1;  // inode 0 is never used

  // Zero all metadata blocks.
  std::vector<uint8_t> zero(kBlockSize, 0);
  for (uint32_t b = 1; b < sb_.data_start; ++b) {
    FICUS_RETURN_IF_ERROR(cache_->Write(b, zero));
  }
  mounted_ = true;

  // Mark metadata blocks (and inode 0) allocated in the bitmaps.
  for (uint32_t b = 0; b < sb_.data_start; ++b) {
    FICUS_RETURN_IF_ERROR(BitmapSet(sb_.block_bitmap_start, b, true));
  }
  FICUS_RETURN_IF_ERROR(BitmapSet(sb_.inode_bitmap_start, 0, true));

  // Create the root directory at inode 1.
  FICUS_ASSIGN_OR_RETURN(InodeNum root, AllocInode(FileType::kDirectory, 0755, 0, 0));
  if (root != kRootInode) {
    return InternalError("root inode not inode 1");
  }
  FICUS_ASSIGN_OR_RETURN(Inode root_inode, ReadInode(root));
  root_inode.nlink = 2;
  FICUS_RETURN_IF_ERROR(WriteInode(root, root_inode));
  return WriteSuperBlock();
}

Status Ufs::Mount() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  dir_index_.clear();
  std::vector<uint8_t> block;
  FICUS_RETURN_IF_ERROR(cache_->Read(0, block));
  ByteReader r(block);
  FICUS_ASSIGN_OR_RETURN(sb_.magic, r.GetU32());
  if (sb_.magic != kUfsMagic) {
    return CorruptError("bad superblock magic");
  }
  FICUS_ASSIGN_OR_RETURN(sb_.block_count, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(sb_.inode_count, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(sb_.inode_bitmap_start, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(sb_.inode_bitmap_blocks, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(sb_.block_bitmap_start, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(sb_.block_bitmap_blocks, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(sb_.inode_table_start, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(sb_.inode_table_blocks, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(sb_.data_start, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(sb_.free_blocks, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(sb_.free_inodes, r.GetU32());
  // Legacy images carry zeros here (the superblock tail is zero-padded),
  // which reads back as "no journal".
  FICUS_ASSIGN_OR_RETURN(sb_.journal_start, r.GetU32());
  FICUS_ASSIGN_OR_RETURN(sb_.journal_blocks, r.GetU32());
  if (sb_.block_count != cache_->device()->block_count()) {
    return CorruptError("superblock block count does not match device");
  }
  mounted_ = true;
  return RecoverJournal().status();
}

// --- Bitmaps ---

StatusOr<bool> Ufs::BitmapGet(uint32_t base, uint32_t index) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint32_t block = base + index / (kBlockSize * 8);
  uint32_t bit = index % (kBlockSize * 8);
  std::vector<uint8_t> data;
  FICUS_RETURN_IF_ERROR(cache_->Read(block, data));
  return (data[bit / 8] >> (bit % 8) & 1) != 0;
}

Status Ufs::BitmapSet(uint32_t base, uint32_t index, bool value) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint32_t block = base + index / (kBlockSize * 8);
  uint32_t bit = index % (kBlockSize * 8);
  std::vector<uint8_t> data;
  FICUS_RETURN_IF_ERROR(cache_->Read(block, data));
  if (value) {
    data[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
  } else {
    data[bit / 8] &= static_cast<uint8_t>(~(1u << (bit % 8)));
  }
  return cache_->Write(block, data);
}

StatusOr<uint32_t> Ufs::BitmapFindFree(uint32_t base, uint32_t count, uint32_t& hint) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint32_t blocks = DivRoundUp(DivRoundUp(count, 8), kBlockSize);
  const uint32_t start_block = std::min(hint, count - 1) / (kBlockSize * 8);
  for (uint32_t step = 0; step < blocks; ++step) {
    uint32_t b = (start_block + step) % blocks;
    std::vector<uint8_t> data;
    FICUS_RETURN_IF_ERROR(cache_->Read(base + b, data));
    for (uint32_t byte = 0; byte < kBlockSize; ++byte) {
      if (data[byte] == 0xFF) {
        continue;
      }
      for (uint32_t bit = 0; bit < 8; ++bit) {
        uint32_t index = b * kBlockSize * 8 + byte * 8 + bit;
        if (index >= count) {
          break;
        }
        if ((data[byte] >> bit & 1) == 0) {
          hint = index + 1 < count ? index + 1 : 0;
          return index;
        }
      }
    }
  }
  return NoSpaceError("bitmap full");
}

// --- Inodes ---

StatusOr<InodeNum> Ufs::AllocInode(FileType type, uint32_t mode, uint32_t uid, uint32_t gid) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckMounted());
  FICUS_ASSIGN_OR_RETURN(uint32_t ino, BitmapFindFree(sb_.inode_bitmap_start, sb_.inode_count,
                                                      inode_alloc_hint_));
  FICUS_RETURN_IF_ERROR(BitmapSet(sb_.inode_bitmap_start, ino, true));
  Inode inode;
  inode.type = type;
  inode.mode = mode;
  inode.uid = uid;
  inode.gid = gid;
  inode.nlink = 1;
  inode.mtime = Now();
  inode.ctime = inode.mtime;
  FICUS_RETURN_IF_ERROR(WriteInode(ino, inode));
  --sb_.free_inodes;
  FICUS_RETURN_IF_ERROR(WriteSuperBlock());
  return ino;
}

Status Ufs::FreeInode(InodeNum ino) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckMounted());
  FICUS_RETURN_IF_ERROR(Truncate(ino, 0));
  Inode inode;
  inode.type = FileType::kFree;
  FICUS_RETURN_IF_ERROR(WriteInode(ino, inode));
  FICUS_RETURN_IF_ERROR(BitmapSet(sb_.inode_bitmap_start, ino, false));
  inode_alloc_hint_ = std::min(inode_alloc_hint_, ino);
  ++sb_.free_inodes;
  return WriteSuperBlock();
}

StatusOr<Inode> Ufs::ReadInode(InodeNum ino) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckMounted());
  if (ino == kInvalidInode || ino >= sb_.inode_count) {
    return InvalidArgumentError("inode number out of range");
  }
  uint32_t block = sb_.inode_table_start + ino / kInodesPerBlock;
  uint32_t offset = (ino % kInodesPerBlock) * kInodeSize;
  std::vector<uint8_t> data;
  FICUS_RETURN_IF_ERROR(cache_->Read(block, data));
  Inode inode;
  FICUS_RETURN_IF_ERROR(DeserializeInode(data.data() + offset, inode));
  return inode;
}

Status Ufs::WriteInode(InodeNum ino, const Inode& inode) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckMounted());
  if (ino == kInvalidInode || ino >= sb_.inode_count) {
    return InvalidArgumentError("inode number out of range");
  }
  uint32_t block = sb_.inode_table_start + ino / kInodesPerBlock;
  uint32_t offset = (ino % kInodesPerBlock) * kInodeSize;
  std::vector<uint8_t> data;
  FICUS_RETURN_IF_ERROR(cache_->Read(block, data));
  FICUS_RETURN_IF_ERROR(SerializeInode(inode, data.data() + offset));
  return cache_->Write(block, data);
}

StatusOr<std::vector<uint8_t>> Ufs::ReadExt(InodeNum ino) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
  return inode.ext;
}

Status Ufs::WriteExt(InodeNum ino, const std::vector<uint8_t>& ext) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (ext.size() > kMaxInodeExt) {
    return NoSpaceError("inode extension area overflow");
  }
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
  inode.ext = ext;
  return WriteInode(ino, inode);
}

// --- Blocks ---

StatusOr<uint32_t> Ufs::AllocBlock() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(uint32_t block, BitmapFindFree(sb_.block_bitmap_start, sb_.block_count,
                                                        block_alloc_hint_));
  FICUS_RETURN_IF_ERROR(BitmapSet(sb_.block_bitmap_start, block, true));
  std::vector<uint8_t> zero(kBlockSize, 0);
  FICUS_RETURN_IF_ERROR(cache_->Write(block, zero));
  --sb_.free_blocks;
  FICUS_RETURN_IF_ERROR(WriteSuperBlock());
  return block;
}

Status Ufs::FreeBlock(uint32_t block) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (block < sb_.data_start || block >= sb_.block_count) {
    return InternalError("freeing non-data block");
  }
  FICUS_RETURN_IF_ERROR(BitmapSet(sb_.block_bitmap_start, block, false));
  block_alloc_hint_ = std::min(block_alloc_hint_, block);
  cache_->InvalidateBlock(block);
  ++sb_.free_blocks;
  return WriteSuperBlock();
}

StatusOr<uint32_t> Ufs::MapBlock(Inode& inode, uint32_t file_block, bool allocate, bool& dirty) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (file_block < kDirectBlocks) {
    if (inode.direct[file_block] == 0) {
      if (!allocate) {
        return uint32_t{0};
      }
      FICUS_ASSIGN_OR_RETURN(uint32_t block, AllocBlock());
      inode.direct[file_block] = block;
      dirty = true;
    }
    return inode.direct[file_block];
  }
  uint32_t indirect_index = file_block - kDirectBlocks;
  if (indirect_index < kPointersPerBlock) {
    if (inode.indirect == 0) {
      if (!allocate) {
        return uint32_t{0};
      }
      FICUS_ASSIGN_OR_RETURN(uint32_t block, AllocBlock());
      inode.indirect = block;
      dirty = true;
    }
    std::vector<uint8_t> pointers;
    FICUS_RETURN_IF_ERROR(cache_->Read(inode.indirect, pointers));
    uint32_t entry = 0;
    std::memcpy(&entry, pointers.data() + indirect_index * 4, 4);
    if (entry == 0 && allocate) {
      FICUS_ASSIGN_OR_RETURN(uint32_t block, AllocBlock());
      entry = block;
      std::memcpy(pointers.data() + indirect_index * 4, &entry, 4);
      FICUS_RETURN_IF_ERROR(cache_->Write(inode.indirect, pointers));
    }
    return entry;
  }
  // Double-indirect tier: one block of pointers to pointer blocks.
  uint64_t di_index = static_cast<uint64_t>(indirect_index) - kPointersPerBlock;
  if (di_index >= static_cast<uint64_t>(kPointersPerBlock) * kPointersPerBlock) {
    return NoSpaceError("file exceeds maximum size");
  }
  uint32_t l1_index = static_cast<uint32_t>(di_index / kPointersPerBlock);
  uint32_t l2_index = static_cast<uint32_t>(di_index % kPointersPerBlock);
  if (inode.double_indirect == 0) {
    if (!allocate) {
      return uint32_t{0};
    }
    FICUS_ASSIGN_OR_RETURN(uint32_t block, AllocBlock());
    inode.double_indirect = block;
    dirty = true;
  }
  std::vector<uint8_t> l1;
  FICUS_RETURN_IF_ERROR(cache_->Read(inode.double_indirect, l1));
  uint32_t l2_block = 0;
  std::memcpy(&l2_block, l1.data() + l1_index * 4, 4);
  if (l2_block == 0) {
    if (!allocate) {
      return uint32_t{0};
    }
    FICUS_ASSIGN_OR_RETURN(uint32_t block, AllocBlock());
    l2_block = block;
    std::memcpy(l1.data() + l1_index * 4, &l2_block, 4);
    FICUS_RETURN_IF_ERROR(cache_->Write(inode.double_indirect, l1));
  }
  std::vector<uint8_t> l2;
  FICUS_RETURN_IF_ERROR(cache_->Read(l2_block, l2));
  uint32_t entry = 0;
  std::memcpy(&entry, l2.data() + l2_index * 4, 4);
  if (entry == 0 && allocate) {
    FICUS_ASSIGN_OR_RETURN(uint32_t block, AllocBlock());
    entry = block;
    std::memcpy(l2.data() + l2_index * 4, &entry, 4);
    FICUS_RETURN_IF_ERROR(cache_->Write(l2_block, l2));
  }
  return entry;
}

// --- File data ---

StatusOr<size_t> Ufs::ReadAt(InodeNum ino, uint64_t offset, size_t length,
                             std::vector<uint8_t>& out) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
  out.clear();
  if (offset >= inode.size) {
    return size_t{0};
  }
  size_t count = static_cast<size_t>(std::min<uint64_t>(length, inode.size - offset));
  out.reserve(count);
  size_t produced = 0;
  bool dirty = false;
  while (produced < count) {
    uint64_t pos = offset + produced;
    uint32_t file_block = static_cast<uint32_t>(pos / kBlockSize);
    uint32_t in_block = static_cast<uint32_t>(pos % kBlockSize);
    size_t chunk = std::min<size_t>(count - produced, kBlockSize - in_block);
    FICUS_ASSIGN_OR_RETURN(uint32_t device_block, MapBlock(inode, file_block, false, dirty));
    if (device_block == 0) {
      // Hole: zero-fill.
      out.insert(out.end(), chunk, 0);
    } else {
      std::vector<uint8_t> data;
      FICUS_RETURN_IF_ERROR(cache_->Read(device_block, data));
      out.insert(out.end(), data.begin() + in_block, data.begin() + in_block + chunk);
    }
    produced += chunk;
  }
  return produced;
}

StatusOr<size_t> Ufs::WriteAt(InodeNum ino, uint64_t offset, const std::vector<uint8_t>& data) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
  if (offset + data.size() > kMaxFileSize) {
    return NoSpaceError("write exceeds maximum file size");
  }
  size_t written = 0;
  bool dirty = false;
  while (written < data.size()) {
    uint64_t pos = offset + written;
    uint32_t file_block = static_cast<uint32_t>(pos / kBlockSize);
    uint32_t in_block = static_cast<uint32_t>(pos % kBlockSize);
    size_t chunk = std::min<size_t>(data.size() - written, kBlockSize - in_block);
    FICUS_ASSIGN_OR_RETURN(uint32_t device_block, MapBlock(inode, file_block, true, dirty));
    if (in_block == 0 && chunk == kBlockSize) {
      std::vector<uint8_t> block(data.begin() + static_cast<ptrdiff_t>(written),
                                 data.begin() + static_cast<ptrdiff_t>(written + chunk));
      FICUS_RETURN_IF_ERROR(cache_->Write(device_block, block));
    } else {
      std::vector<uint8_t> block;
      FICUS_RETURN_IF_ERROR(cache_->Read(device_block, block));
      std::copy(data.begin() + static_cast<ptrdiff_t>(written),
                data.begin() + static_cast<ptrdiff_t>(written + chunk),
                block.begin() + in_block);
      FICUS_RETURN_IF_ERROR(cache_->Write(device_block, block));
    }
    written += chunk;
  }
  if (offset + data.size() > inode.size) {
    inode.size = offset + data.size();
    dirty = true;
  }
  inode.mtime = Now();
  dirty = true;
  if (dirty) {
    FICUS_RETURN_IF_ERROR(WriteInode(ino, inode));
  }
  dir_index_.erase(ino);
  return written;
}

Status Ufs::Truncate(InodeNum ino, uint64_t new_size) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
  if (new_size > kMaxFileSize) {
    return NoSpaceError("truncate exceeds maximum file size");
  }
  uint64_t keep_blocks =
      (std::min<uint64_t>(new_size, kMaxFileSize) + kBlockSize - 1) / kBlockSize;
  // Free direct blocks beyond the boundary.
  for (uint32_t i = keep_blocks; i < kDirectBlocks; ++i) {
    if (inode.direct[i] != 0) {
      FICUS_RETURN_IF_ERROR(FreeBlock(inode.direct[i]));
      inode.direct[i] = 0;
    }
  }
  // Free indirect-mapped blocks beyond the boundary.
  if (inode.indirect != 0) {
    std::vector<uint8_t> pointers;
    FICUS_RETURN_IF_ERROR(cache_->Read(inode.indirect, pointers));
    bool any_kept = false;
    bool changed = false;
    for (uint32_t i = 0; i < kPointersPerBlock; ++i) {
      uint32_t entry = 0;
      std::memcpy(&entry, pointers.data() + i * 4, 4);
      if (entry == 0) {
        continue;
      }
      uint32_t file_block = kDirectBlocks + i;
      if (file_block >= keep_blocks) {
        FICUS_RETURN_IF_ERROR(FreeBlock(entry));
        entry = 0;
        std::memcpy(pointers.data() + i * 4, &entry, 4);
        changed = true;
      } else {
        any_kept = true;
      }
    }
    if (!any_kept) {
      FICUS_RETURN_IF_ERROR(FreeBlock(inode.indirect));
      inode.indirect = 0;
    } else if (changed) {
      FICUS_RETURN_IF_ERROR(cache_->Write(inode.indirect, pointers));
    }
  }
  // Free double-indirect-mapped blocks beyond the boundary.
  if (inode.double_indirect != 0) {
    std::vector<uint8_t> l1;
    FICUS_RETURN_IF_ERROR(cache_->Read(inode.double_indirect, l1));
    bool l1_any_kept = false;
    bool l1_changed = false;
    for (uint32_t i = 0; i < kPointersPerBlock; ++i) {
      uint32_t l2_block = 0;
      std::memcpy(&l2_block, l1.data() + i * 4, 4);
      if (l2_block == 0) {
        continue;
      }
      std::vector<uint8_t> l2;
      FICUS_RETURN_IF_ERROR(cache_->Read(l2_block, l2));
      bool l2_any_kept = false;
      bool l2_changed = false;
      for (uint32_t j = 0; j < kPointersPerBlock; ++j) {
        uint32_t entry = 0;
        std::memcpy(&entry, l2.data() + j * 4, 4);
        if (entry == 0) {
          continue;
        }
        uint64_t file_block = static_cast<uint64_t>(kDirectBlocks) + kPointersPerBlock +
                              static_cast<uint64_t>(i) * kPointersPerBlock + j;
        if (file_block >= keep_blocks) {
          FICUS_RETURN_IF_ERROR(FreeBlock(entry));
          entry = 0;
          std::memcpy(l2.data() + j * 4, &entry, 4);
          l2_changed = true;
        } else {
          l2_any_kept = true;
        }
      }
      if (!l2_any_kept) {
        FICUS_RETURN_IF_ERROR(FreeBlock(l2_block));
        l2_block = 0;
        std::memcpy(l1.data() + i * 4, &l2_block, 4);
        l1_changed = true;
      } else {
        if (l2_changed) {
          FICUS_RETURN_IF_ERROR(cache_->Write(l2_block, l2));
        }
        l1_any_kept = true;
      }
    }
    if (!l1_any_kept) {
      FICUS_RETURN_IF_ERROR(FreeBlock(inode.double_indirect));
      inode.double_indirect = 0;
    } else if (l1_changed) {
      FICUS_RETURN_IF_ERROR(cache_->Write(inode.double_indirect, l1));
    }
  }
  // Zero the tail of the final kept block so a later extension reads
  // zeros, not stale bytes.
  if (new_size % kBlockSize != 0) {
    uint32_t last_block = static_cast<uint32_t>(new_size / kBlockSize);
    bool dirty = false;
    FICUS_ASSIGN_OR_RETURN(uint32_t device_block, MapBlock(inode, last_block, false, dirty));
    if (device_block != 0) {
      std::vector<uint8_t> data;
      FICUS_RETURN_IF_ERROR(cache_->Read(device_block, data));
      std::fill(data.begin() + static_cast<ptrdiff_t>(new_size % kBlockSize), data.end(), 0);
      FICUS_RETURN_IF_ERROR(cache_->Write(device_block, data));
    }
  }
  inode.size = new_size;
  inode.mtime = Now();
  dir_index_.erase(ino);
  return WriteInode(ino, inode);
}

StatusOr<std::vector<uint8_t>> Ufs::ReadAll(InodeNum ino) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
  std::vector<uint8_t> out;
  FICUS_RETURN_IF_ERROR(ReadAt(ino, 0, static_cast<size_t>(inode.size), out).status());
  return out;
}

Status Ufs::WriteAll(InodeNum ino, const std::vector<uint8_t>& data) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(Truncate(ino, 0));
  if (!data.empty()) {
    FICUS_RETURN_IF_ERROR(WriteAt(ino, 0, data).status());
  }
  return OkStatus();
}

// --- Block-remap commit ---

StatusOr<std::vector<uint32_t>> Ufs::CollectFreeDataBlocks(size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<uint32_t> out;
  out.reserve(n);
  uint32_t bitmap_blocks = DivRoundUp(DivRoundUp(sb_.block_count, 8), kBlockSize);
  const uint32_t start_block =
      std::min(block_alloc_hint_, sb_.block_count - 1) / (kBlockSize * 8);
  for (uint32_t step = 0; step < bitmap_blocks && out.size() < n; ++step) {
    uint32_t b = (start_block + step) % bitmap_blocks;
    std::vector<uint8_t> data;
    FICUS_RETURN_IF_ERROR(cache_->Read(sb_.block_bitmap_start + b, data));
    for (uint32_t byte = 0; byte < kBlockSize && out.size() < n; ++byte) {
      if (data[byte] == 0xFF) {
        continue;
      }
      for (uint32_t bit = 0; bit < 8 && out.size() < n; ++bit) {
        uint32_t index = b * kBlockSize * 8 + byte * 8 + bit;
        if (index >= sb_.block_count) {
          break;
        }
        if ((data[byte] >> bit & 1) == 0) {
          out.push_back(index);
        }
      }
    }
  }
  if (out.size() < n) {
    return NoSpaceError("not enough free blocks for remap commit");
  }
  return out;
}

Status Ufs::RemapCommit(InodeNum ino, const std::vector<RemapBlock>& blocks,
                        uint64_t new_size, const std::vector<uint8_t>* new_ext,
                        const RemapCommitHook& hook) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckMounted());
  if (sb_.journal_blocks < 2) {
    return NotSupportedError("device formatted without a journal");
  }
  if (blocks.empty()) {
    return InvalidArgumentError("remap commit with no dirty blocks");
  }
  if (new_size > kMaxFileSize) {
    return NoSpaceError("file too large");
  }
  if (new_ext != nullptr && new_ext->size() > kMaxInodeExt) {
    return NoSpaceError("inode extension area overflow");
  }
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
  uint64_t old_block_count = (inode.size + kBlockSize - 1) / kBlockSize;
  uint64_t new_block_count = (new_size + kBlockSize - 1) / kBlockSize;
  if (old_block_count != new_block_count) {
    return NotSupportedError("remap commit cannot change the block count");
  }

  // Plan, read-only: where each dirty block lives and which pointer word
  // must swing to its replacement.
  struct Slot {
    uint32_t file_block = 0;
    uint32_t old_block = 0;
    uint32_t fresh_block = 0;
    bool direct = false;
    uint32_t ptr_block = 0;  // device block holding the pointer word (if !direct)
    uint32_t ptr_index = 0;  // word index within it
    const std::vector<uint8_t>* image = nullptr;
  };
  auto read_word = [&](uint32_t block, uint32_t index) -> StatusOr<uint32_t> {
    std::vector<uint8_t> data;
    FICUS_RETURN_IF_ERROR(cache_->Read(block, data));
    uint32_t word = 0;
    std::memcpy(&word, data.data() + static_cast<size_t>(index) * 4, 4);
    return word;
  };
  std::vector<Slot> slots;
  slots.reserve(blocks.size());
  std::unordered_set<uint32_t> seen;
  for (const RemapBlock& rb : blocks) {
    if (rb.image.size() != kBlockSize) {
      return InvalidArgumentError("remap image is not one full block");
    }
    if (rb.file_block >= new_block_count) {
      return InvalidArgumentError("remap block beyond end of file");
    }
    if (!seen.insert(rb.file_block).second) {
      return InvalidArgumentError("duplicate remap block");
    }
    Slot slot;
    slot.file_block = rb.file_block;
    slot.image = &rb.image;
    if (rb.file_block < kDirectBlocks) {
      slot.direct = true;
      slot.old_block = inode.direct[rb.file_block];
    } else {
      uint32_t idx = rb.file_block - kDirectBlocks;
      if (idx < kPointersPerBlock) {
        if (inode.indirect == 0) {
          return NotSupportedError("remap target is a hole");
        }
        slot.ptr_block = inode.indirect;
        slot.ptr_index = idx;
      } else {
        uint64_t di = static_cast<uint64_t>(idx) - kPointersPerBlock;
        if (inode.double_indirect == 0) {
          return NotSupportedError("remap target is a hole");
        }
        FICUS_ASSIGN_OR_RETURN(
            uint32_t l2_block,
            read_word(inode.double_indirect,
                      static_cast<uint32_t>(di / kPointersPerBlock)));
        if (l2_block == 0) {
          return NotSupportedError("remap target is a hole");
        }
        slot.ptr_block = l2_block;
        slot.ptr_index = static_cast<uint32_t>(di % kPointersPerBlock);
      }
      FICUS_ASSIGN_OR_RETURN(slot.old_block, read_word(slot.ptr_block, slot.ptr_index));
    }
    if (slot.old_block == 0) {
      return NotSupportedError("remap target is a hole");
    }
    slots.push_back(slot);
  }

  // Provisionally pick replacement blocks. No bitmap is written yet: until
  // the journaled metadata commits these blocks stay free on disk, so a
  // crash leaks nothing and leaves nothing reachable.
  FICUS_ASSIGN_OR_RETURN(std::vector<uint32_t> fresh, CollectFreeDataBlocks(slots.size()));
  for (size_t i = 0; i < slots.size(); ++i) {
    slots[i].fresh_block = fresh[i];
  }

  // Assemble the metadata redo set as whole-block images edited in memory:
  // bitmap blocks (fresh bits on, old bits off), pointer blocks with swung
  // words, and the inode-table block with new direct pointers, size, mtime,
  // and extension area. The superblock is untouched — N blocks allocated
  // and N freed keeps free_blocks exact.
  std::map<uint32_t, std::vector<uint8_t>> redo;
  auto load = [&](uint32_t block) -> StatusOr<std::vector<uint8_t>*> {
    auto it = redo.find(block);
    if (it == redo.end()) {
      std::vector<uint8_t> data;
      FICUS_RETURN_IF_ERROR(cache_->Read(block, data));
      it = redo.emplace(block, std::move(data)).first;
    }
    return &it->second;
  };
  auto bit_edit = [&](uint32_t index, bool value) -> Status {
    uint32_t block = sb_.block_bitmap_start + index / (kBlockSize * 8);
    uint32_t bit = index % (kBlockSize * 8);
    FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t>* data, load(block));
    if (value) {
      (*data)[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    } else {
      (*data)[bit / 8] &= static_cast<uint8_t>(~(1u << (bit % 8)));
    }
    return OkStatus();
  };
  for (const Slot& s : slots) {
    FICUS_RETURN_IF_ERROR(bit_edit(s.fresh_block, true));
    FICUS_RETURN_IF_ERROR(bit_edit(s.old_block, false));
    if (!s.direct) {
      FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t>* data, load(s.ptr_block));
      std::memcpy(data->data() + static_cast<size_t>(s.ptr_index) * 4,
                  &s.fresh_block, 4);
    }
  }
  Inode new_inode = inode;
  for (const Slot& s : slots) {
    if (s.direct) {
      new_inode.direct[s.file_block] = s.fresh_block;
    }
  }
  new_inode.size = new_size;
  new_inode.mtime = Now();
  if (new_ext != nullptr) {
    new_inode.ext = *new_ext;
  }
  uint32_t itable_block = sb_.inode_table_start + ino / kInodesPerBlock;
  uint32_t ioffset = (ino % kInodesPerBlock) * kInodeSize;
  {
    FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t>* data, load(itable_block));
    FICUS_RETURN_IF_ERROR(SerializeInode(new_inode, data->data() + ioffset));
  }

  storage::BlockJournal journal(cache_, sb_.journal_start, sb_.journal_blocks);
  if (redo.size() > journal.capacity()) {
    return NotSupportedError("metadata redo set exceeds journal capacity");
  }
  auto checkpoint = [&](RemapCommitPoint point) -> Status {
    return hook != nullptr ? hook(point) : OkStatus();
  };

  // 1. New data into still-free blocks.
  for (const Slot& s : slots) {
    FICUS_RETURN_IF_ERROR(cache_->Write(s.fresh_block, *s.image));
  }
  FICUS_RETURN_IF_ERROR(checkpoint(RemapCommitPoint::kAfterDataWrite));

  // 2-5. Journal the metadata swing; sealing is the commit point.
  std::vector<storage::JournalRecord> records;
  records.reserve(redo.size());
  for (auto& [target, image] : redo) {
    records.push_back({target, std::move(image)});
  }
  FICUS_RETURN_IF_ERROR(journal.Stage(records));
  FICUS_RETURN_IF_ERROR(checkpoint(RemapCommitPoint::kAfterJournalStage));
  FICUS_RETURN_IF_ERROR(journal.Seal());
  FICUS_RETURN_IF_ERROR(checkpoint(RemapCommitPoint::kAfterJournalSeal));
  FICUS_RETURN_IF_ERROR(journal.Apply());
  FICUS_RETURN_IF_ERROR(checkpoint(RemapCommitPoint::kAfterJournalApply));
  FICUS_RETURN_IF_ERROR(journal.Clear());
  FICUS_RETURN_IF_ERROR(checkpoint(RemapCommitPoint::kAfterJournalClear));

  // Post-commit maintenance: the superseded blocks are free now (the
  // applied bitmap says so); drop their cached copies and lower the rotor
  // so allocation rescans them.
  for (const Slot& s : slots) {
    cache_->InvalidateBlock(s.old_block);
    block_alloc_hint_ = std::min(block_alloc_hint_, s.old_block);
  }
  dir_index_.erase(ino);
  return OkStatus();
}

StatusOr<bool> Ufs::RecoverJournal() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckMounted());
  if (sb_.journal_blocks < 2) {
    return false;
  }
  storage::BlockJournal journal(cache_, sb_.journal_start, sb_.journal_blocks);
  FICUS_ASSIGN_OR_RETURN(storage::JournalRecoveryResult result, journal.Recover());
  if (result.replayed) {
    // The replay rewrote bitmap/pointer/inode blocks under every in-memory
    // parse of them; drop derived state and rescan bitmaps from the start.
    dir_index_.clear();
    inode_alloc_hint_ = 0;
    block_alloc_hint_ = 0;
  }
  return result.replayed;
}

// --- Directories ---

StatusOr<std::vector<UfsDirEntry>> Ufs::CachedDirEntries(InodeNum dir) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(dir));
  return CachedDirEntries(dir, inode);
}

StatusOr<std::vector<UfsDirEntry>> Ufs::CachedDirEntries(InodeNum dir, const Inode& inode) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  SyncDirIndexEpoch();
  auto it = dir_index_.find(dir);
  if (it != dir_index_.end()) {
    return it->second.entries;
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> data, ReadAll(dir));
  FICUS_ASSIGN_OR_RETURN(std::vector<UfsDirEntry> entries, DeserializeDir(data));
  if (inode.type == FileType::kDirectory) {
    RememberDirIndex(dir, entries);
  }
  return entries;
}

void Ufs::SyncDirIndexEpoch() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // A full buffer-cache invalidation means the device may have diverged
  // from everything we have parsed (crash simulation, external mutation),
  // so drop the index wholesale. This epoch — not a per-entry
  // (mtime, size) stamp — is what keys the index: under the simulated
  // clock a same-tick, same-size rewrite leaves mtime and size untouched,
  // so a stamp cannot distinguish fresh contents from stale ones. Local
  // mutations stay correct because WriteAt/Truncate erase the entry and
  // WriteDirEntries re-stamps it.
  if (cache_->epoch() != dir_index_epoch_) {
    dir_index_.clear();
    dir_index_epoch_ = cache_->epoch();
  }
}

void Ufs::RememberDirIndex(InodeNum dir, const std::vector<UfsDirEntry>& entries) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  SyncDirIndexEpoch();
  if (dir_index_.size() >= kMaxDirIndexEntries) {
    dir_index_.erase(dir_index_.begin());
  }
  CachedDirIndex index;
  index.entries = entries;
  index.by_name.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    index.by_name.emplace(entries[i].name, i);
  }
  dir_index_[dir] = std::move(index);
}

Status Ufs::WriteDirEntries(InodeNum dir, const std::vector<UfsDirEntry>& entries) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // WriteAll's Truncate/WriteAt erase the index entry; re-stamp it with
  // the freshly written state so the next access is a hit.
  FICUS_RETURN_IF_ERROR(WriteAll(dir, SerializeDir(entries)));
  RememberDirIndex(dir, entries);
  return OkStatus();
}

StatusOr<InodeNum> Ufs::DirLookup(InodeNum dir, std::string_view name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(dir));
  if (inode.type != FileType::kDirectory) {
    return NotDirError("DirLookup on non-directory inode");
  }
  SyncDirIndexEpoch();
  auto it = dir_index_.find(dir);
  if (it != dir_index_.end()) {
    auto hit = it->second.by_name.find(std::string(name));
    if (hit == it->second.by_name.end()) {
      return NotFoundError(std::string(name));
    }
    return it->second.entries[hit->second].ino;
  }
  // Cold: a hashed directory answers from one bucket (three short reads)
  // without parsing — O(1) even at 100k entries. Legacy images take the
  // full parse below, which also warms the index.
  auto fast = DirHashLookup(dir, inode, name);
  if (fast.status().code() != ErrorCode::kNotSupported) {
    return fast;
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<UfsDirEntry> entries, CachedDirEntries(dir, inode));
  for (const auto& e : entries) {
    if (e.name == name) {
      return e.ino;
    }
  }
  return NotFoundError(std::string(name));
}

StatusOr<InodeNum> Ufs::DirHashLookup(InodeNum dir, const Inode& inode,
                                      std::string_view name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (inode.size < kUfsDirHeaderBytes) {
    return NotSupportedError("directory too small for hashed format");
  }
  std::vector<uint8_t> header;
  FICUS_RETURN_IF_ERROR(ReadAt(dir, 0, kUfsDirHeaderBytes, header).status());
  ByteReader hr(header);
  FICUS_ASSIGN_OR_RETURN(uint32_t magic, hr.GetU32());
  if (magic != kUfsDirMagic) {
    return NotSupportedError("legacy directory format");
  }
  FICUS_ASSIGN_OR_RETURN(uint32_t buckets, hr.GetU32());
  if (buckets == 0 || (buckets & (buckets - 1)) != 0) {
    return CorruptError("hashed directory bucket count invalid");
  }
  uint32_t bucket = UfsNameHash(name) & (buckets - 1);
  std::vector<uint8_t> slot;
  FICUS_RETURN_IF_ERROR(
      ReadAt(dir, kUfsDirHeaderBytes + static_cast<uint64_t>(bucket) * 8, 8, slot)
          .status());
  ByteReader sr(slot);
  FICUS_ASSIGN_OR_RETURN(uint32_t offset, sr.GetU32());
  FICUS_ASSIGN_OR_RETURN(uint32_t length, sr.GetU32());
  if (length == 0) {
    return NotFoundError(std::string(name));
  }
  uint64_t record_area = kUfsDirHeaderBytes + static_cast<uint64_t>(buckets) * 8;
  if (record_area + offset + length > inode.size) {
    return CorruptError("hashed directory bucket out of range");
  }
  std::vector<uint8_t> run;
  FICUS_RETURN_IF_ERROR(ReadAt(dir, record_area + offset, length, run).status());
  std::vector<UfsDirEntry> in_bucket;
  ByteReader rr(run);
  FICUS_RETURN_IF_ERROR(ParseDirRecords(rr, in_bucket));
  for (const auto& e : in_bucket) {
    if (e.name == name) {
      return e.ino;
    }
  }
  return NotFoundError(std::string(name));
}

Status Ufs::DirAdd(InodeNum dir, std::string_view name, InodeNum ino, FileType type) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (name.empty() || name.size() > vfs::kMaxComponentLength ||
      name.find('/') != std::string_view::npos) {
    return InvalidArgumentError("bad directory entry name");
  }
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(dir));
  if (inode.type != FileType::kDirectory) {
    return NotDirError("DirAdd on non-directory inode");
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<UfsDirEntry> entries, CachedDirEntries(dir, inode));
  for (const auto& e : entries) {
    if (e.name == name) {
      return ExistsError(std::string(name));
    }
  }
  entries.push_back(UfsDirEntry{std::string(name), ino, type});
  return WriteDirEntries(dir, entries);
}

Status Ufs::DirRemove(InodeNum dir, std::string_view name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(std::vector<UfsDirEntry> entries, CachedDirEntries(dir));
  auto it = std::find_if(entries.begin(), entries.end(),
                         [&](const UfsDirEntry& e) { return e.name == name; });
  if (it == entries.end()) {
    return NotFoundError(std::string(name));
  }
  entries.erase(it);
  return WriteDirEntries(dir, entries);
}

StatusOr<std::vector<UfsDirEntry>> Ufs::DirList(InodeNum dir) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(dir));
  if (inode.type != FileType::kDirectory) {
    return NotDirError("DirList on non-directory inode");
  }
  return CachedDirEntries(dir, inode);
}

StatusOr<bool> Ufs::DirIsEmpty(InodeNum dir) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(std::vector<UfsDirEntry> entries, DirList(dir));
  return entries.empty();
}

Status Ufs::DirRepoint(InodeNum dir, std::string_view name, InodeNum new_ino) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(std::vector<UfsDirEntry> entries, CachedDirEntries(dir));
  for (auto& e : entries) {
    if (e.name == name) {
      e.ino = new_ino;
      return WriteDirEntries(dir, entries);
    }
  }
  return NotFoundError(std::string(name));
}

// --- Composite operations ---

StatusOr<InodeNum> Ufs::CreateFile(InodeNum dir, std::string_view name, FileType type,
                                   uint32_t mode, uint32_t uid, uint32_t gid) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Fail before allocating if the name is taken.
  auto existing = DirLookup(dir, name);
  if (existing.ok()) {
    return ExistsError(std::string(name));
  }
  if (existing.status().code() != ErrorCode::kNotFound) {
    return existing.status();
  }
  FICUS_ASSIGN_OR_RETURN(InodeNum ino, AllocInode(type, mode, uid, gid));
  Status add = DirAdd(dir, name, ino, type);
  if (!add.ok()) {
    (void)FreeInode(ino);
    return add;
  }
  if (type == FileType::kDirectory) {
    // "." and ".." are implicit in this UFS; a directory starts with
    // nlink 2 (itself + parent entry) to keep fsck's arithmetic honest.
    FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
    inode.nlink = 2;
    FICUS_RETURN_IF_ERROR(WriteInode(ino, inode));
    FICUS_ASSIGN_OR_RETURN(Inode parent, ReadInode(dir));
    ++parent.nlink;
    FICUS_RETURN_IF_ERROR(WriteInode(dir, parent));
  }
  return ino;
}

StatusOr<std::vector<InodeNum>> Ufs::CreateFiles(InodeNum dir,
                                                 const std::vector<std::string>& names,
                                                 FileType type, uint32_t mode, uint32_t uid,
                                                 uint32_t gid) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckMounted());
  if (type == FileType::kDirectory) {
    // Directories need per-entry nlink bookkeeping; batch callers create
    // them through CreateFile.
    return InvalidArgumentError("CreateFiles only creates non-directory inodes");
  }
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(dir));
  if (inode.type != FileType::kDirectory) {
    return NotDirError("CreateFiles on non-directory inode");
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<UfsDirEntry> entries, CachedDirEntries(dir, inode));
  {
    // Views into `entries`/`names` are only safe while neither mutates;
    // all validation completes before the allocation loop below appends.
    std::unordered_set<std::string_view> taken;
    taken.reserve(entries.size() + names.size());
    for (const auto& e : entries) {
      taken.insert(std::string_view(e.name));
    }
    for (const auto& name : names) {
      if (name.empty() || name.size() > vfs::kMaxComponentLength ||
          name.find('/') != std::string_view::npos) {
        return InvalidArgumentError("bad directory entry name");
      }
      if (!taken.insert(std::string_view(name)).second) {
        return ExistsError(name);
      }
    }
  }
  std::vector<InodeNum> created;
  created.reserve(names.size());
  entries.reserve(entries.size() + names.size());
  for (const auto& name : names) {
    auto ino = AllocInode(type, mode, uid, gid);
    if (!ino.ok()) {
      for (InodeNum undo : created) {
        (void)FreeInode(undo);
      }
      return ino.status();
    }
    entries.push_back(UfsDirEntry{name, *ino, type});
    created.push_back(*ino);
  }
  Status wrote = WriteDirEntries(dir, entries);
  if (!wrote.ok()) {
    for (InodeNum undo : created) {
      (void)FreeInode(undo);
    }
    return wrote;
  }
  return created;
}

Status Ufs::Unlink(InodeNum dir, std::string_view name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_ASSIGN_OR_RETURN(InodeNum ino, DirLookup(dir, name));
  FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
  if (inode.type == FileType::kDirectory) {
    FICUS_ASSIGN_OR_RETURN(bool empty, DirIsEmpty(ino));
    if (!empty) {
      return NotEmptyError(std::string(name));
    }
    FICUS_RETURN_IF_ERROR(DirRemove(dir, name));
    FICUS_RETURN_IF_ERROR(FreeInode(ino));
    FICUS_ASSIGN_OR_RETURN(Inode parent, ReadInode(dir));
    if (parent.nlink > 2) {
      --parent.nlink;
    }
    return WriteInode(dir, parent);
  }
  FICUS_RETURN_IF_ERROR(DirRemove(dir, name));
  if (inode.nlink <= 1) {
    return FreeInode(ino);
  }
  --inode.nlink;
  return WriteInode(ino, inode);
}

StatusOr<uint32_t> Ufs::FreeBlockCount() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckMounted());
  return sb_.free_blocks;
}

StatusOr<uint32_t> Ufs::FreeInodeCount() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckMounted());
  return sb_.free_inodes;
}

// --- fsck ---

StatusOr<std::vector<std::string>> Ufs::Check() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckMounted());
  std::vector<std::string> problems;

  std::vector<bool> block_used(sb_.block_count, false);
  for (uint32_t b = 0; b < sb_.data_start; ++b) {
    block_used[b] = true;
  }
  std::vector<uint32_t> refcount(sb_.inode_count, 0);
  std::vector<bool> inode_seen(sb_.inode_count, false);

  // Pass 1: walk every allocated inode; record block usage.
  for (InodeNum ino = 1; ino < sb_.inode_count; ++ino) {
    FICUS_ASSIGN_OR_RETURN(bool allocated, BitmapGet(sb_.inode_bitmap_start, ino));
    if (!allocated) {
      continue;
    }
    inode_seen[ino] = true;
    FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
    if (inode.type == FileType::kFree) {
      problems.push_back("inode " + std::to_string(ino) + " allocated but marked free");
      continue;
    }
    auto use_block = [&](uint32_t block) {
      if (block == 0) {
        return;
      }
      if (block < sb_.data_start || block >= sb_.block_count) {
        problems.push_back("inode " + std::to_string(ino) + " references block " +
                           std::to_string(block) + " outside data area");
        return;
      }
      if (block_used[block]) {
        problems.push_back("block " + std::to_string(block) + " multiply referenced");
      }
      block_used[block] = true;
    };
    for (uint32_t d : inode.direct) {
      use_block(d);
    }
    if (inode.indirect != 0) {
      use_block(inode.indirect);
      std::vector<uint8_t> pointers;
      FICUS_RETURN_IF_ERROR(cache_->Read(inode.indirect, pointers));
      for (uint32_t i = 0; i < kPointersPerBlock; ++i) {
        uint32_t entry = 0;
        std::memcpy(&entry, pointers.data() + i * 4, 4);
        use_block(entry);
      }
    }
    if (inode.double_indirect != 0) {
      use_block(inode.double_indirect);
      std::vector<uint8_t> l1;
      FICUS_RETURN_IF_ERROR(cache_->Read(inode.double_indirect, l1));
      for (uint32_t i = 0; i < kPointersPerBlock; ++i) {
        uint32_t l2_block = 0;
        std::memcpy(&l2_block, l1.data() + i * 4, 4);
        if (l2_block == 0) {
          continue;
        }
        use_block(l2_block);
        if (l2_block < sb_.data_start || l2_block >= sb_.block_count) {
          continue;
        }
        std::vector<uint8_t> l2;
        FICUS_RETURN_IF_ERROR(cache_->Read(l2_block, l2));
        for (uint32_t j = 0; j < kPointersPerBlock; ++j) {
          uint32_t entry = 0;
          std::memcpy(&entry, l2.data() + j * 4, 4);
          use_block(entry);
        }
      }
    }
    // Directory contents reference inodes. Validate the on-disk image
    // structurally (hashed header honest, records in the right buckets)
    // before trusting its parse.
    if (inode.type == FileType::kDirectory) {
      FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, ReadAll(ino));
      ValidateDirImage(ino, raw, problems);
      auto entries_or = DeserializeDir(raw);
      if (!entries_or.ok()) {
        problems.push_back("directory inode " + std::to_string(ino) +
                           " unparsable: " + entries_or.status().ToString());
        continue;
      }
      const std::vector<UfsDirEntry>& entries = *entries_or;
      for (const auto& e : entries) {
        if (e.ino == kInvalidInode || e.ino >= sb_.inode_count) {
          problems.push_back("directory inode " + std::to_string(ino) +
                             " entry '" + e.name + "' has bad inode");
          continue;
        }
        ++refcount[e.ino];
      }
    }
  }

  // Pass 2: compare bitmaps to observed usage.
  for (uint32_t b = sb_.data_start; b < sb_.block_count; ++b) {
    FICUS_ASSIGN_OR_RETURN(bool allocated, BitmapGet(sb_.block_bitmap_start, b));
    if (allocated && !block_used[b]) {
      problems.push_back("block " + std::to_string(b) + " allocated but unreferenced");
    }
    if (!allocated && block_used[b]) {
      problems.push_back("block " + std::to_string(b) + " referenced but free in bitmap");
    }
  }

  // Pass 3: nlink for regular files/symlinks must equal directory refs.
  for (InodeNum ino = 2; ino < sb_.inode_count; ++ino) {
    if (!inode_seen[ino]) {
      if (refcount[ino] != 0) {
        problems.push_back("free inode " + std::to_string(ino) + " referenced by a directory");
      }
      continue;
    }
    FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
    if (inode.type == FileType::kRegular || inode.type == FileType::kSymlink) {
      if (inode.nlink != refcount[ino]) {
        problems.push_back("inode " + std::to_string(ino) + " nlink " +
                           std::to_string(inode.nlink) + " != refs " +
                           std::to_string(refcount[ino]));
      }
    } else if (inode.type == FileType::kDirectory) {
      if (refcount[ino] != 1) {
        problems.push_back("directory inode " + std::to_string(ino) + " has " +
                           std::to_string(refcount[ino]) + " parent references");
      }
    }
  }

  // Pass 4: the journal must be quiescent. A sealed intent surviving to
  // fsck means a committed update was never replayed (recovery did not
  // run); its staged home-block images are the orphans to flag.
  if (sb_.journal_blocks >= 2) {
    storage::BlockJournal journal(cache_, sb_.journal_start, sb_.journal_blocks);
    FICUS_ASSIGN_OR_RETURN(bool sealed, journal.SealedOnDisk());
    if (sealed) {
      problems.push_back("journal intent record left sealed (unreplayed commit)");
    }
  }
  return problems;
}

StatusOr<uint32_t> Ufs::ReclaimOrphans() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(CheckMounted());
  std::vector<uint32_t> refcount(sb_.inode_count, 0);
  std::vector<bool> allocated(sb_.inode_count, false);
  for (InodeNum ino = 1; ino < sb_.inode_count; ++ino) {
    FICUS_ASSIGN_OR_RETURN(bool used, BitmapGet(sb_.inode_bitmap_start, ino));
    if (!used) {
      continue;
    }
    allocated[ino] = true;
    FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
    if (inode.type != FileType::kDirectory) {
      continue;
    }
    FICUS_ASSIGN_OR_RETURN(std::vector<UfsDirEntry> entries, DirList(ino));
    for (const auto& e : entries) {
      if (e.ino != kInvalidInode && e.ino < sb_.inode_count) {
        ++refcount[e.ino];
      }
    }
  }
  uint32_t reclaimed = 0;
  for (InodeNum ino = kRootInode + 1; ino < sb_.inode_count; ++ino) {
    if (!allocated[ino] || refcount[ino] != 0) {
      continue;
    }
    FICUS_ASSIGN_OR_RETURN(Inode inode, ReadInode(ino));
    if (inode.type != FileType::kRegular && inode.type != FileType::kSymlink) {
      continue;
    }
    FICUS_RETURN_IF_ERROR(FreeInode(ino));
    ++reclaimed;
  }
  return reclaimed;
}

}  // namespace ficus::ufs
