// Adapter exposing a Ufs instance through the stackable vnode interface so
// it can sit at the bottom of a Ficus stack (Figure 1: the UFS layer).
#ifndef FICUS_SRC_UFS_UFS_VFS_H_
#define FICUS_SRC_UFS_UFS_VFS_H_

#include <memory>

#include "src/ufs/ufs.h"
#include "src/vfs/vnode.h"

namespace ficus::ufs {

class UfsVfs;

// A vnode bound to one UFS inode. Vnodes are cheap handles; all state lives
// in the filesystem, so two vnodes for the same inode stay coherent.
class UfsVnode : public vfs::Vnode {
 public:
  UfsVnode(UfsVfs* fs, InodeNum ino) : fs_(fs), ino_(ino) {}

  StatusOr<vfs::VAttr> GetAttr(const vfs::OpContext& ctx = {}) override;
  Status SetAttr(const vfs::SetAttrRequest& request, const vfs::OpContext& ctx) override;
  StatusOr<vfs::VnodePtr> Lookup(std::string_view name, const vfs::OpContext& ctx) override;
  StatusOr<vfs::VnodePtr> Create(std::string_view name, const vfs::VAttr& attr,
                                 const vfs::OpContext& ctx) override;
  Status Remove(std::string_view name, const vfs::OpContext& ctx) override;
  StatusOr<vfs::VnodePtr> Mkdir(std::string_view name, const vfs::VAttr& attr,
                                const vfs::OpContext& ctx) override;
  Status Rmdir(std::string_view name, const vfs::OpContext& ctx) override;
  Status Link(std::string_view name, const vfs::VnodePtr& target,
              const vfs::OpContext& ctx) override;
  Status Rename(std::string_view old_name, const vfs::VnodePtr& new_parent,
                std::string_view new_name, const vfs::OpContext& ctx) override;
  StatusOr<std::vector<vfs::DirEntry>> Readdir(const vfs::OpContext& ctx) override;
  StatusOr<vfs::VnodePtr> Symlink(std::string_view name, std::string_view target,
                                  const vfs::OpContext& ctx) override;
  StatusOr<std::string> Readlink(const vfs::OpContext& ctx) override;
  Status Open(uint32_t flags, const vfs::OpContext& ctx) override;
  Status Close(uint32_t flags, const vfs::OpContext& ctx) override;
  StatusOr<size_t> Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                        const vfs::OpContext& ctx) override;
  StatusOr<size_t> Write(uint64_t offset, const std::vector<uint8_t>& data,
                         const vfs::OpContext& ctx) override;
  Status Fsync(const vfs::OpContext& ctx) override;

  InodeNum ino() const { return ino_; }

 private:
  UfsVfs* fs_;
  InodeNum ino_;
};

class UfsVfs : public vfs::Vfs {
 public:
  // ufs is borrowed and must be mounted.
  UfsVfs(Ufs* ufs, uint64_t fsid = 1) : ufs_(ufs), fsid_(fsid) {}

  StatusOr<vfs::VnodePtr> Root() override;
  StatusOr<vfs::FsStats> Statfs() override;

  Ufs* ufs() { return ufs_; }
  uint64_t fsid() const { return fsid_; }

 private:
  Ufs* ufs_;
  uint64_t fsid_;
};

// Converts between the UFS and vnode type enums.
vfs::VnodeType ToVnodeType(FileType type);
FileType ToFileType(vfs::VnodeType type);

}  // namespace ficus::ufs

#endif  // FICUS_SRC_UFS_UFS_VFS_H_
