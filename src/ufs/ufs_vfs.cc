#include "src/ufs/ufs_vfs.h"

namespace ficus::ufs {

using vfs::Credentials;
using vfs::OpContext;
using vfs::DirEntry;
using vfs::SetAttrRequest;
using vfs::VAttr;
using vfs::VnodePtr;
using vfs::VnodeType;

vfs::VnodeType ToVnodeType(FileType type) {
  switch (type) {
    case FileType::kRegular:
      return VnodeType::kRegular;
    case FileType::kDirectory:
      return VnodeType::kDirectory;
    case FileType::kSymlink:
      return VnodeType::kSymlink;
    case FileType::kFree:
      break;
  }
  return VnodeType::kRegular;
}

FileType ToFileType(vfs::VnodeType type) {
  switch (type) {
    case VnodeType::kRegular:
      return FileType::kRegular;
    case VnodeType::kDirectory:
    case VnodeType::kGraftPoint:  // graft points are directories to the UFS
      return FileType::kDirectory;
    case VnodeType::kSymlink:
      return FileType::kSymlink;
  }
  return FileType::kRegular;
}

StatusOr<VAttr> UfsVnode::GetAttr(const OpContext&) {
  FICUS_ASSIGN_OR_RETURN(Inode inode, fs_->ufs()->ReadInode(ino_));
  VAttr attr;
  attr.type = ToVnodeType(inode.type);
  attr.mode = inode.mode;
  attr.uid = inode.uid;
  attr.gid = inode.gid;
  attr.nlink = inode.nlink;
  attr.size = inode.size;
  attr.mtime = inode.mtime;
  attr.ctime = inode.ctime;
  attr.fileid = ino_;
  attr.fsid = fs_->fsid();
  return attr;
}

Status UfsVnode::SetAttr(const SetAttrRequest& request, const OpContext&) {
  Ufs* ufs = fs_->ufs();
  FICUS_ASSIGN_OR_RETURN(Inode inode, ufs->ReadInode(ino_));
  if (request.set_size) {
    if (inode.type != FileType::kRegular) {
      return IsDirError("cannot truncate a non-regular file");
    }
    FICUS_RETURN_IF_ERROR(ufs->Truncate(ino_, request.size));
    FICUS_ASSIGN_OR_RETURN(inode, ufs->ReadInode(ino_));
  }
  if (request.set_mode) {
    inode.mode = request.mode;
  }
  if (request.set_uid) {
    inode.uid = request.uid;
  }
  if (request.set_gid) {
    inode.gid = request.gid;
  }
  if (request.set_mtime) {
    inode.mtime = request.mtime;
  }
  inode.ctime = ufs->Now();
  return ufs->WriteInode(ino_, inode);
}

StatusOr<VnodePtr> UfsVnode::Lookup(std::string_view name, const OpContext&) {
  FICUS_ASSIGN_OR_RETURN(InodeNum child, fs_->ufs()->DirLookup(ino_, name));
  return VnodePtr(std::make_shared<UfsVnode>(fs_, child));
}

StatusOr<VnodePtr> UfsVnode::Create(std::string_view name, const VAttr& attr,
                                    const OpContext&) {
  FICUS_ASSIGN_OR_RETURN(InodeNum child,
                         fs_->ufs()->CreateFile(ino_, name, FileType::kRegular,
                                                attr.mode != 0 ? attr.mode : 0644, attr.uid,
                                                attr.gid));
  return VnodePtr(std::make_shared<UfsVnode>(fs_, child));
}

Status UfsVnode::Remove(std::string_view name, const OpContext&) {
  Ufs* ufs = fs_->ufs();
  FICUS_ASSIGN_OR_RETURN(InodeNum child, ufs->DirLookup(ino_, name));
  FICUS_ASSIGN_OR_RETURN(Inode inode, ufs->ReadInode(child));
  if (inode.type == FileType::kDirectory) {
    return IsDirError("use rmdir for directories");
  }
  return ufs->Unlink(ino_, name);
}

StatusOr<VnodePtr> UfsVnode::Mkdir(std::string_view name, const VAttr& attr,
                                   const OpContext&) {
  FICUS_ASSIGN_OR_RETURN(InodeNum child,
                         fs_->ufs()->CreateFile(ino_, name, FileType::kDirectory,
                                                attr.mode != 0 ? attr.mode : 0755, attr.uid,
                                                attr.gid));
  return VnodePtr(std::make_shared<UfsVnode>(fs_, child));
}

Status UfsVnode::Rmdir(std::string_view name, const OpContext&) {
  Ufs* ufs = fs_->ufs();
  FICUS_ASSIGN_OR_RETURN(InodeNum child, ufs->DirLookup(ino_, name));
  FICUS_ASSIGN_OR_RETURN(Inode inode, ufs->ReadInode(child));
  if (inode.type != FileType::kDirectory) {
    return NotDirError(std::string(name));
  }
  return ufs->Unlink(ino_, name);
}

Status UfsVnode::Link(std::string_view name, const VnodePtr& target, const OpContext&) {
  auto* ufs_target = dynamic_cast<UfsVnode*>(target.get());
  if (ufs_target == nullptr || ufs_target->fs_ != fs_) {
    return CrossDeviceError("link target not in this filesystem");
  }
  Ufs* ufs = fs_->ufs();
  FICUS_ASSIGN_OR_RETURN(Inode inode, ufs->ReadInode(ufs_target->ino_));
  if (inode.type == FileType::kDirectory) {
    return IsDirError("cannot hard-link a directory");
  }
  FICUS_RETURN_IF_ERROR(ufs->DirAdd(ino_, name, ufs_target->ino_, inode.type));
  ++inode.nlink;
  return ufs->WriteInode(ufs_target->ino_, inode);
}

namespace {
// True when `candidate` lies inside the subtree rooted at `root` (used to
// reject renames that would create a directory cycle).
StatusOr<bool> UfsSubtreeContains(Ufs* ufs, InodeNum root, InodeNum candidate) {
  if (root == candidate) {
    return true;
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<UfsDirEntry> entries, ufs->DirList(root));
  for (const auto& e : entries) {
    if (e.type != FileType::kDirectory) {
      continue;
    }
    FICUS_ASSIGN_OR_RETURN(bool inside, UfsSubtreeContains(ufs, e.ino, candidate));
    if (inside) {
      return true;
    }
  }
  return false;
}
}  // namespace

Status UfsVnode::Rename(std::string_view old_name, const VnodePtr& new_parent,
                        std::string_view new_name, const OpContext&) {
  auto* ufs_parent = dynamic_cast<UfsVnode*>(new_parent.get());
  if (ufs_parent == nullptr || ufs_parent->fs_ != fs_) {
    return CrossDeviceError("rename target directory not in this filesystem");
  }
  Ufs* ufs = fs_->ufs();
  FICUS_ASSIGN_OR_RETURN(InodeNum moving, ufs->DirLookup(ino_, old_name));
  FICUS_ASSIGN_OR_RETURN(Inode inode, ufs->ReadInode(moving));
  if (inode.type == FileType::kDirectory && ufs_parent->ino_ != ino_) {
    FICUS_ASSIGN_OR_RETURN(bool cycle, UfsSubtreeContains(ufs, moving, ufs_parent->ino_));
    if (cycle) {
      return InvalidArgumentError("rename would move a directory into its own subtree");
    }
  }
  // Displace an existing target entry if present.
  auto existing = ufs->DirLookup(ufs_parent->ino_, new_name);
  if (existing.ok()) {
    FICUS_RETURN_IF_ERROR(ufs->Unlink(ufs_parent->ino_, new_name));
  } else if (existing.status().code() != ErrorCode::kNotFound) {
    return existing.status();
  }
  FICUS_RETURN_IF_ERROR(ufs->DirRemove(ino_, old_name));
  FICUS_RETURN_IF_ERROR(ufs->DirAdd(ufs_parent->ino_, new_name, moving, inode.type));
  if (inode.type == FileType::kDirectory && ufs_parent->ino_ != ino_) {
    FICUS_ASSIGN_OR_RETURN(Inode old_parent, ufs->ReadInode(ino_));
    if (old_parent.nlink > 2) {
      --old_parent.nlink;
    }
    FICUS_RETURN_IF_ERROR(ufs->WriteInode(ino_, old_parent));
    FICUS_ASSIGN_OR_RETURN(Inode new_parent_inode, ufs->ReadInode(ufs_parent->ino_));
    ++new_parent_inode.nlink;
    FICUS_RETURN_IF_ERROR(ufs->WriteInode(ufs_parent->ino_, new_parent_inode));
  }
  return OkStatus();
}

StatusOr<std::vector<DirEntry>> UfsVnode::Readdir(const OpContext&) {
  FICUS_ASSIGN_OR_RETURN(std::vector<UfsDirEntry> raw, fs_->ufs()->DirList(ino_));
  std::vector<DirEntry> entries;
  entries.reserve(raw.size());
  for (const auto& e : raw) {
    entries.push_back(DirEntry{e.name, e.ino, ToVnodeType(e.type)});
  }
  return entries;
}

StatusOr<VnodePtr> UfsVnode::Symlink(std::string_view name, std::string_view target,
                                     const OpContext&) {
  Ufs* ufs = fs_->ufs();
  FICUS_ASSIGN_OR_RETURN(InodeNum child,
                         ufs->CreateFile(ino_, name, FileType::kSymlink, 0777, 0, 0));
  std::vector<uint8_t> bytes(target.begin(), target.end());
  FICUS_RETURN_IF_ERROR(ufs->WriteAll(child, bytes));
  return VnodePtr(std::make_shared<UfsVnode>(fs_, child));
}

StatusOr<std::string> UfsVnode::Readlink(const OpContext&) {
  Ufs* ufs = fs_->ufs();
  FICUS_ASSIGN_OR_RETURN(Inode inode, ufs->ReadInode(ino_));
  if (inode.type != FileType::kSymlink) {
    return InvalidArgumentError("not a symlink");
  }
  FICUS_ASSIGN_OR_RETURN(std::vector<uint8_t> data, ufs->ReadAll(ino_));
  return std::string(data.begin(), data.end());
}

Status UfsVnode::Open(uint32_t flags, const OpContext&) {
  if ((flags & vfs::kOpenTruncate) != 0) {
    return fs_->ufs()->Truncate(ino_, 0);
  }
  // Touch the inode so buffer-cache warmth mirrors real open behaviour.
  return fs_->ufs()->ReadInode(ino_).status();
}

Status UfsVnode::Close(uint32_t, const OpContext&) { return OkStatus(); }

StatusOr<size_t> UfsVnode::Read(uint64_t offset, size_t length, std::vector<uint8_t>& out,
                                const OpContext&) {
  return fs_->ufs()->ReadAt(ino_, offset, length, out);
}

StatusOr<size_t> UfsVnode::Write(uint64_t offset, const std::vector<uint8_t>& data,
                                 const OpContext&) {
  return fs_->ufs()->WriteAt(ino_, offset, data);
}

Status UfsVnode::Fsync(const OpContext&) {
  // The buffer cache is write-through; nothing to flush.
  return OkStatus();
}

StatusOr<VnodePtr> UfsVfs::Root() {
  if (!ufs_->mounted()) {
    return InternalError("UFS not mounted");
  }
  return VnodePtr(std::make_shared<UfsVnode>(this, kRootInode));
}

StatusOr<vfs::FsStats> UfsVfs::Statfs() {
  vfs::FsStats stats;
  const SuperBlock& sb = ufs_->superblock();
  stats.total_blocks = sb.block_count;
  FICUS_ASSIGN_OR_RETURN(uint32_t free_blocks, ufs_->FreeBlockCount());
  stats.free_blocks = free_blocks;
  stats.total_inodes = sb.inode_count;
  FICUS_ASSIGN_OR_RETURN(uint32_t free_inodes, ufs_->FreeInodeCount());
  stats.free_inodes = free_inodes;
  return stats;
}

}  // namespace ficus::ufs
