// A Unix file system on a simulated block device. This is the nonvolatile
// storage layer the Ficus physical layer sits on (paper section 2.1: "Ficus
// can use the UFS as its underlying nonvolatile storage service ... not
// burdened with the details of how best to physically organize disk
// storage").
//
// On-disk layout (4 KiB blocks):
//   block 0                superblock
//   [1 .. ib)              inode bitmap
//   [ib .. bb)             block bitmap
//   [bb .. data)           inode table (256-byte inodes, 16 per block)
//   [data .. end)          data blocks
//
// Files use 12 direct block pointers plus one single-indirect block
// (1024 pointers), for a maximum file size of (12 + 1024) * 4 KiB ≈ 4 MiB.
// Directories store variable-length {inode, type, name} records in their
// data blocks, exactly like a file.
//
// Each inode carries a small *extension area* — the "extensible inodes"
// the Ficus paper wishes for in section 7, which let a layering client
// (the Ficus physical layer) stash replication attributes in the inode
// itself instead of an auxiliary file, eliminating two I/Os per cold
// open. The area is opaque to the UFS.
#ifndef FICUS_SRC_UFS_UFS_H_
#define FICUS_SRC_UFS_UFS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/storage/buffer_cache.h"

namespace ficus::ufs {

using InodeNum = uint32_t;
constexpr InodeNum kInvalidInode = 0;
constexpr InodeNum kRootInode = 1;

constexpr uint32_t kInodeSize = 256;
constexpr uint32_t kInodesPerBlock = storage::kBlockSize / kInodeSize;
constexpr uint32_t kDirectBlocks = 12;
constexpr uint32_t kPointersPerBlock = storage::kBlockSize / sizeof(uint32_t);
constexpr uint64_t kMaxFileSize =
    static_cast<uint64_t>(kDirectBlocks + kPointersPerBlock) * storage::kBlockSize;
constexpr uint32_t kUfsMagic = 0xF1C05000;

enum class FileType : uint8_t {
  kFree = 0,
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 3,
};

// In-memory image of one on-disk inode.
struct Inode {
  FileType type = FileType::kFree;
  uint32_t mode = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint32_t nlink = 0;
  uint64_t size = 0;
  SimTime mtime = 0;
  SimTime ctime = 0;
  uint32_t direct[kDirectBlocks] = {};
  uint32_t indirect = 0;
  // Opaque client extension area (see kMaxInodeExt).
  std::vector<uint8_t> ext;
};

// Fixed on-disk inode fields occupy 93 bytes; a 2-byte length prefix and
// the extension share the rest of the 256-byte inode.
constexpr uint32_t kMaxInodeExt = kInodeSize - 93 - 2;

// One directory record as returned by DirList.
struct UfsDirEntry {
  std::string name;
  InodeNum ino = kInvalidInode;
  FileType type = FileType::kRegular;
};

struct SuperBlock {
  uint32_t magic = kUfsMagic;
  uint32_t block_count = 0;
  uint32_t inode_count = 0;
  uint32_t inode_bitmap_start = 0;
  uint32_t inode_bitmap_blocks = 0;
  uint32_t block_bitmap_start = 0;
  uint32_t block_bitmap_blocks = 0;
  uint32_t inode_table_start = 0;
  uint32_t inode_table_blocks = 0;
  uint32_t data_start = 0;
  uint32_t free_blocks = 0;
  uint32_t free_inodes = 0;
};

// The filesystem proper. All block access goes through the BufferCache so
// cold/warm I/O experiments can count device reads precisely.
//
// Thread-safe: one recursive mutex serializes every operation (public
// operations compose — CreateFile calls AllocInode + DirAdd — hence
// recursive). Coarse by design: a UFS instance is one disk, and the
// paper's concurrency lives above it; sharding comes later if profiles
// demand it. The UFS never calls out of itself while holding the lock
// except into its own BufferCache/BlockDevice (lower in the lock order).
class Ufs {
 public:
  // cache is borrowed; clock may be null (mtimes stay zero).
  Ufs(storage::BufferCache* cache, const Clock* clock = nullptr);

  // Writes a fresh filesystem with `inode_count` inodes onto the device and
  // creates the root directory.
  Status Format(uint32_t inode_count);

  // Reads and validates the superblock of a previously formatted device.
  Status Mount();

  bool mounted() const { return mounted_; }
  const SuperBlock& superblock() const { return sb_; }
  storage::BufferCache* cache() { return cache_; }
  SimTime Now() const { return clock_ != nullptr ? clock_->Now() : 0; }

  // --- Inode operations ---
  StatusOr<InodeNum> AllocInode(FileType type, uint32_t mode, uint32_t uid, uint32_t gid);
  Status FreeInode(InodeNum ino);
  StatusOr<Inode> ReadInode(InodeNum ino);
  Status WriteInode(InodeNum ino, const Inode& inode);

  // Convenience accessors for the inode extension area.
  StatusOr<std::vector<uint8_t>> ReadExt(InodeNum ino);
  Status WriteExt(InodeNum ino, const std::vector<uint8_t>& ext);

  // --- File data operations (on any inode) ---
  // Reads up to `length` bytes at `offset`; short reads at EOF.
  StatusOr<size_t> ReadAt(InodeNum ino, uint64_t offset, size_t length,
                          std::vector<uint8_t>& out);
  // Writes, extending and allocating blocks as needed.
  StatusOr<size_t> WriteAt(InodeNum ino, uint64_t offset, const std::vector<uint8_t>& data);
  // Sets file size, freeing blocks beyond the new end.
  Status Truncate(InodeNum ino, uint64_t new_size);
  // Reads the entire file contents.
  StatusOr<std::vector<uint8_t>> ReadAll(InodeNum ino);
  // Replaces the entire file contents.
  Status WriteAll(InodeNum ino, const std::vector<uint8_t>& data);

  // --- Directory operations ---
  StatusOr<InodeNum> DirLookup(InodeNum dir, std::string_view name);
  Status DirAdd(InodeNum dir, std::string_view name, InodeNum ino, FileType type);
  Status DirRemove(InodeNum dir, std::string_view name);
  StatusOr<std::vector<UfsDirEntry>> DirList(InodeNum dir);
  StatusOr<bool> DirIsEmpty(InodeNum dir);
  // Atomically repoints an existing entry at a different inode — the
  // low-level reference swing the Ficus shadow-file commit relies on
  // (paper section 3.2: "the shadow atomically replaces the original by
  // changing a low-level directory reference").
  Status DirRepoint(InodeNum dir, std::string_view name, InodeNum new_ino);

  // --- Whole-tree helpers ---
  // Creates a file/directory/symlink under `dir`. Returns the new inode.
  StatusOr<InodeNum> CreateFile(InodeNum dir, std::string_view name, FileType type,
                                uint32_t mode, uint32_t uid, uint32_t gid);
  // Unlinks name from dir; frees the inode when nlink drops to zero.
  Status Unlink(InodeNum dir, std::string_view name);

  StatusOr<uint32_t> FreeBlockCount();
  StatusOr<uint32_t> FreeInodeCount();

  // fsck-style invariants: every allocated block/inode reachable exactly as
  // the bitmaps say, directory entries point at allocated inodes, nlink
  // counts match reference counts. Returns a list of problems (empty = ok).
  StatusOr<std::vector<std::string>> Check();

  // fsck-style repair for the one kind of debris a crash can legally
  // leave: an allocated regular-file/symlink inode no directory entry
  // references (e.g. a superseded replica whose directory repoint
  // committed but whose FreeInode never ran). Frees them and returns how
  // many were reclaimed. Directories are never reclaimed here.
  StatusOr<uint32_t> ReclaimOrphans();

 private:
  Status CheckMounted() const;
  Status WriteSuperBlock();

  StatusOr<uint32_t> AllocBlock();
  Status FreeBlock(uint32_t block);

  // Bitmap helpers: index is an inode/block ordinal; base is the bitmap's
  // first device block.
  StatusOr<bool> BitmapGet(uint32_t base, uint32_t index);
  Status BitmapSet(uint32_t base, uint32_t index, bool value);
  StatusOr<uint32_t> BitmapFindFree(uint32_t base, uint32_t count);

  // Maps a file block ordinal to a device block, optionally allocating.
  StatusOr<uint32_t> MapBlock(Inode& inode, uint32_t file_block, bool allocate, bool& dirty);

  // --- parsed-directory index ---
  // Every DirLookup/DirAdd/DirRemove used to re-read and re-parse the
  // whole directory file; this per-inode index keeps the parsed entries,
  // validated by the inode's (mtime, size) stamp and erased outright by
  // any data mutation (WriteAt/Truncate), mirroring the physical layer's
  // generation-validated dir_cache_.
  // Drops the whole index if the buffer cache has been invalidated since
  // we last looked (the device may have diverged, e.g. crash simulation).
  void SyncDirIndexEpoch();
  StatusOr<std::vector<UfsDirEntry>> CachedDirEntries(InodeNum dir);
  // Overload for callers that already read the inode (saves a re-read).
  StatusOr<std::vector<UfsDirEntry>> CachedDirEntries(InodeNum dir, const Inode& inode);
  // Serializes + writes `entries` as dir's contents and re-stamps the
  // index with the resulting inode state.
  Status WriteDirEntries(InodeNum dir, const std::vector<UfsDirEntry>& entries);
  void RememberDirIndex(InodeNum dir, const std::vector<UfsDirEntry>& entries);

  struct CachedDirIndex {
    SimTime mtime = 0;
    uint64_t size = 0;
    std::vector<UfsDirEntry> entries;
  };
  std::map<InodeNum, CachedDirIndex> dir_index_;
  uint64_t dir_index_epoch_ = 0;
  static constexpr size_t kMaxDirIndexEntries = 128;

  mutable std::recursive_mutex mu_;
  storage::BufferCache* cache_;
  const Clock* clock_;
  SuperBlock sb_;
  bool mounted_ = false;
};

}  // namespace ficus::ufs

#endif  // FICUS_SRC_UFS_UFS_H_
