// A Unix file system on a simulated block device. This is the nonvolatile
// storage layer the Ficus physical layer sits on (paper section 2.1: "Ficus
// can use the UFS as its underlying nonvolatile storage service ... not
// burdened with the details of how best to physically organize disk
// storage").
//
// On-disk layout (4 KiB blocks):
//   block 0                superblock
//   [1 .. ib)              inode bitmap
//   [ib .. bb)             block bitmap
//   [bb .. data)           inode table (256-byte inodes, 16 per block)
//   [data .. end)          data blocks
//
// Files use 12 direct block pointers, one single-indirect block
// (1024 pointers), and one double-indirect block (1024 pointer blocks),
// for a maximum file size of (12 + 1024 + 1024²) * 4 KiB ≈ 4 GiB. The
// double-indirect tier exists for the Ficus physical layer's directory
// blobs: a 10⁶-entry replicated directory serializes to tens of MiB,
// far past what direct + single-indirect addressing covers.
// Directories store variable-length {inode, type, name} records in their
// data blocks, exactly like a file.
//
// Each inode carries a small *extension area* — the "extensible inodes"
// the Ficus paper wishes for in section 7, which let a layering client
// (the Ficus physical layer) stash replication attributes in the inode
// itself instead of an auxiliary file, eliminating two I/Os per cold
// open. The area is opaque to the UFS.
#ifndef FICUS_SRC_UFS_UFS_H_
#define FICUS_SRC_UFS_UFS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/storage/buffer_cache.h"

namespace ficus::ufs {

using InodeNum = uint32_t;
constexpr InodeNum kInvalidInode = 0;
constexpr InodeNum kRootInode = 1;

constexpr uint32_t kInodeSize = 256;
constexpr uint32_t kInodesPerBlock = storage::kBlockSize / kInodeSize;
constexpr uint32_t kDirectBlocks = 12;
constexpr uint32_t kPointersPerBlock = storage::kBlockSize / sizeof(uint32_t);
constexpr uint64_t kMaxFileSize =
    static_cast<uint64_t>(kDirectBlocks + kPointersPerBlock +
                          static_cast<uint64_t>(kPointersPerBlock) * kPointersPerBlock) *
    storage::kBlockSize;
constexpr uint32_t kUfsMagic = 0xF1C05000;

enum class FileType : uint8_t {
  kFree = 0,
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 3,
};

// In-memory image of one on-disk inode.
struct Inode {
  FileType type = FileType::kFree;
  uint32_t mode = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint32_t nlink = 0;
  uint64_t size = 0;
  SimTime mtime = 0;
  SimTime ctime = 0;
  uint32_t direct[kDirectBlocks] = {};
  uint32_t indirect = 0;
  uint32_t double_indirect = 0;
  // Opaque client extension area (see kMaxInodeExt).
  std::vector<uint8_t> ext;
};

// Fixed on-disk inode fields occupy 97 bytes; a 2-byte length prefix and
// the extension share the rest of the 256-byte inode.
constexpr uint32_t kMaxInodeExt = kInodeSize - 97 - 2;

// One directory record as returned by DirList.
struct UfsDirEntry {
  std::string name;
  InodeNum ino = kInvalidInode;
  FileType type = FileType::kRegular;
};

// On-disk directory format. Directories written before the hashed format
// existed are flat record sequences ("legacy"); everything written since
// leads with kUfsDirMagic and carries a bucket table so one component
// lookup touches one bucket instead of scanning 100k records. The upgrade
// is transparent: legacy images parse fine and are rewritten hashed by
// their next mutation.
//
//   u32 magic = kUfsDirMagic
//   u32 bucket_count          (power of two)
//   u32 entry_count
//   u32 reserved (0)
//   bucket_count x { u32 offset, u32 length }   bucket table; offsets are
//                                               relative to the record area
//   record area: per-bucket runs of records
//       u32 ino | u8 type | u16 name_len | name
//
// Legacy records are the same u32-led shape; the magic is far above any
// valid inode number, so the first word disambiguates the two formats.
constexpr uint32_t kUfsDirMagic = 0xF1C0D1E5;
constexpr uint32_t kUfsDirHeaderBytes = 16;

// FNV-1a over the component name; bucket = hash & (bucket_count - 1).
uint32_t UfsNameHash(std::string_view name);
// Power-of-two bucket count targeting ~8 entries per bucket.
uint32_t UfsDirBucketCount(size_t entry_count);

struct SuperBlock {
  uint32_t magic = kUfsMagic;
  uint32_t block_count = 0;
  uint32_t inode_count = 0;
  uint32_t inode_bitmap_start = 0;
  uint32_t inode_bitmap_blocks = 0;
  uint32_t block_bitmap_start = 0;
  uint32_t block_bitmap_blocks = 0;
  uint32_t inode_table_start = 0;
  uint32_t inode_table_blocks = 0;
  uint32_t data_start = 0;
  uint32_t free_blocks = 0;
  uint32_t free_inodes = 0;
  // Redo-journal region between the inode table and the data area, used by
  // RemapCommit. Zero on images formatted before the journal existed or on
  // devices too small to afford one; the block-remap commit is then
  // unsupported and callers stay on the shadow-file path.
  uint32_t journal_start = 0;
  uint32_t journal_blocks = 0;
};

// Durable-write boundaries of Ufs::RemapCommit, in commit order. A test
// hook may abort after any of them; because all I/O is write-through, the
// on-disk image is then exactly what a crash at that boundary leaves.
enum class RemapCommitPoint : uint8_t {
  kAfterDataWrite,     // new images written into still-free blocks
  kAfterJournalStage,  // redo records staged, intent record unsealed
  kAfterJournalSeal,   // commit point: intent record sealed
  kAfterJournalApply,  // home metadata blocks rewritten
  kAfterJournalClear,  // intent retired; commit fully complete
};
using RemapCommitHook = std::function<Status(RemapCommitPoint)>;

// One dirty file block for RemapCommit: the file-block ordinal plus its
// new full-block image (callers zero-pad a trailing partial block).
struct RemapBlock {
  uint32_t file_block = 0;
  std::vector<uint8_t> image;
};

// The filesystem proper. All block access goes through the BufferCache so
// cold/warm I/O experiments can count device reads precisely.
//
// Thread-safe: one recursive mutex serializes every operation (public
// operations compose — CreateFile calls AllocInode + DirAdd — hence
// recursive). Coarse by design: a UFS instance is one disk, and the
// paper's concurrency lives above it; sharding comes later if profiles
// demand it. The UFS never calls out of itself while holding the lock
// except into its own BufferCache/BlockDevice (lower in the lock order).
class Ufs {
 public:
  // cache is borrowed; clock may be null (mtimes stay zero).
  Ufs(storage::BufferCache* cache, const Clock* clock = nullptr);

  // Writes a fresh filesystem with `inode_count` inodes onto the device and
  // creates the root directory.
  Status Format(uint32_t inode_count);

  // Reads and validates the superblock of a previously formatted device.
  Status Mount();

  bool mounted() const { return mounted_; }
  const SuperBlock& superblock() const { return sb_; }
  storage::BufferCache* cache() { return cache_; }
  SimTime Now() const { return clock_ != nullptr ? clock_->Now() : 0; }

  // --- Inode operations ---
  StatusOr<InodeNum> AllocInode(FileType type, uint32_t mode, uint32_t uid, uint32_t gid);
  Status FreeInode(InodeNum ino);
  StatusOr<Inode> ReadInode(InodeNum ino);
  Status WriteInode(InodeNum ino, const Inode& inode);

  // Convenience accessors for the inode extension area.
  StatusOr<std::vector<uint8_t>> ReadExt(InodeNum ino);
  Status WriteExt(InodeNum ino, const std::vector<uint8_t>& ext);

  // --- File data operations (on any inode) ---
  // Reads up to `length` bytes at `offset`; short reads at EOF.
  StatusOr<size_t> ReadAt(InodeNum ino, uint64_t offset, size_t length,
                          std::vector<uint8_t>& out);
  // Writes, extending and allocating blocks as needed.
  StatusOr<size_t> WriteAt(InodeNum ino, uint64_t offset, const std::vector<uint8_t>& data);
  // Sets file size, freeing blocks beyond the new end.
  Status Truncate(InodeNum ino, uint64_t new_size);
  // Reads the entire file contents.
  StatusOr<std::vector<uint8_t>> ReadAll(InodeNum ino);
  // Replaces the entire file contents.
  Status WriteAll(InodeNum ino, const std::vector<uint8_t>& data);

  // --- Block-remap commit (journal-backed; DESIGN.md "Commit protocol") ---
  // Atomically replaces the listed file blocks of `ino` with new images,
  // updating size, mtime, and (when new_ext != nullptr) the extension area
  // in the same commit. The new data lands in freshly chosen free blocks;
  // the bitmaps, indirect pointers, and inode then swing over through one
  // sealed redo journal, so a crash at any point yields the complete old
  // or the complete new file — never a mix, never a leaked block, and
  // never a superblock write (the free count is commit-neutral).
  // Returns kNotSupported when the device has no journal, a listed block
  // is a hole, new_size changes the file's block count, or the metadata
  // redo set exceeds journal capacity — callers fall back to the
  // shadow-file commit.
  Status RemapCommit(InodeNum ino, const std::vector<RemapBlock>& blocks,
                     uint64_t new_size, const std::vector<uint8_t>* new_ext,
                     const RemapCommitHook& hook = nullptr);

  // Journal recovery: replays a sealed commit left by a crash, discards an
  // unsealed one. Returns true when a commit was replayed. Idempotent.
  // Mount() runs this; the physical layer also runs it on Attach because
  // simulated reboots re-attach to the surviving image without remounting.
  StatusOr<bool> RecoverJournal();

  // Does this image carry a usable journal region?
  bool journal_enabled() const { return sb_.journal_blocks >= 2; }

  // --- Directory operations ---
  StatusOr<InodeNum> DirLookup(InodeNum dir, std::string_view name);
  Status DirAdd(InodeNum dir, std::string_view name, InodeNum ino, FileType type);
  Status DirRemove(InodeNum dir, std::string_view name);
  StatusOr<std::vector<UfsDirEntry>> DirList(InodeNum dir);
  StatusOr<bool> DirIsEmpty(InodeNum dir);
  // Atomically repoints an existing entry at a different inode — the
  // low-level reference swing the Ficus shadow-file commit relies on
  // (paper section 3.2: "the shadow atomically replaces the original by
  // changing a low-level directory reference").
  Status DirRepoint(InodeNum dir, std::string_view name, InodeNum new_ino);

  // --- Whole-tree helpers ---
  // Creates a file/directory/symlink under `dir`. Returns the new inode.
  StatusOr<InodeNum> CreateFile(InodeNum dir, std::string_view name, FileType type,
                                uint32_t mode, uint32_t uid, uint32_t gid);
  // Batch creation of non-directory files under one parent: allocates
  // every inode, then rewrites the directory once. Per-name CreateFile
  // rewrites the whole directory file each call, which makes populating
  // an N-entry directory O(N^2) in serialized bytes; this is the O(N)
  // path bulk writers (replica propagation, CreateChildren) should use.
  // All-or-nothing: any bad or duplicate name fails the whole batch
  // before storage is touched.
  StatusOr<std::vector<InodeNum>> CreateFiles(InodeNum dir,
                                              const std::vector<std::string>& names,
                                              FileType type, uint32_t mode, uint32_t uid,
                                              uint32_t gid);
  // Unlinks name from dir; frees the inode when nlink drops to zero.
  Status Unlink(InodeNum dir, std::string_view name);

  StatusOr<uint32_t> FreeBlockCount();
  StatusOr<uint32_t> FreeInodeCount();

  // fsck-style invariants: every allocated block/inode reachable exactly as
  // the bitmaps say, directory entries point at allocated inodes, nlink
  // counts match reference counts. Returns a list of problems (empty = ok).
  StatusOr<std::vector<std::string>> Check();

  // fsck-style repair for the one kind of debris a crash can legally
  // leave: an allocated regular-file/symlink inode no directory entry
  // references (e.g. a superseded replica whose directory repoint
  // committed but whose FreeInode never ran). Frees them and returns how
  // many were reclaimed. Directories are never reclaimed here.
  StatusOr<uint32_t> ReclaimOrphans();

 private:
  Status CheckMounted() const;
  Status WriteSuperBlock();

  StatusOr<uint32_t> AllocBlock();
  Status FreeBlock(uint32_t block);

  // Bitmap helpers: index is an inode/block ordinal; base is the bitmap's
  // first device block. `hint` is an allocation rotor (first ordinal that
  // might be free): FindFree starts its scan at the hint's bitmap block
  // and wraps, advancing the rotor past the bit it hands out — without it
  // every allocation rescans the bitmap's used prefix, turning an
  // N-file population into O(N^2) bitmap block reads. Frees lower the
  // rotor so the scan stays exhaustive.
  StatusOr<bool> BitmapGet(uint32_t base, uint32_t index);
  Status BitmapSet(uint32_t base, uint32_t index, bool value);
  StatusOr<uint32_t> BitmapFindFree(uint32_t base, uint32_t count, uint32_t& hint);

  // Read-only scan for `n` distinct free data blocks (RemapCommit's
  // provisional allocation: nothing is marked used until the journaled
  // bitmap images commit, so an aborted commit leaks nothing).
  StatusOr<std::vector<uint32_t>> CollectFreeDataBlocks(size_t n);

  // Maps a file block ordinal to a device block, optionally allocating.
  StatusOr<uint32_t> MapBlock(Inode& inode, uint32_t file_block, bool allocate, bool& dirty);

  // --- parsed-directory index ---
  // Every DirLookup/DirAdd/DirRemove used to re-read and re-parse the
  // whole directory file; this per-inode index keeps the parsed entries
  // plus a name map for O(1) warm lookups. An index entry is valid by
  // construction: every local data mutation (WriteAt/Truncate) erases it,
  // directory writers re-stamp it, and the whole index is keyed on the
  // buffer cache's invalidation epoch so an external device divergence
  // (crash simulation, remount) drops it wholesale. The previous
  // (mtime, size) stamp is gone — it could not tell a same-tick,
  // same-size rewrite from the cached state under the simulated clock.
  void SyncDirIndexEpoch();
  StatusOr<std::vector<UfsDirEntry>> CachedDirEntries(InodeNum dir);
  // Overload for callers that already read the inode (saves a re-read).
  StatusOr<std::vector<UfsDirEntry>> CachedDirEntries(InodeNum dir, const Inode& inode);
  // Serializes + writes `entries` as dir's contents and re-stamps the
  // index with the resulting inode state.
  Status WriteDirEntries(InodeNum dir, const std::vector<UfsDirEntry>& entries);
  void RememberDirIndex(InodeNum dir, const std::vector<UfsDirEntry>& entries);

  // Targeted one-bucket lookup against the hashed on-disk format, used
  // when the index is cold so a 100k-entry directory costs three short
  // reads instead of a full parse. kNotSupported = legacy format (caller
  // falls back to a full parse), kNotFound = name absent.
  StatusOr<InodeNum> DirHashLookup(InodeNum dir, const Inode& inode, std::string_view name);

  struct CachedDirIndex {
    std::vector<UfsDirEntry> entries;
    // name -> index into entries; rebuilt whenever entries are (re)stamped.
    std::unordered_map<std::string, size_t> by_name;
  };
  std::map<InodeNum, CachedDirIndex> dir_index_;
  uint64_t dir_index_epoch_ = 0;
  static constexpr size_t kMaxDirIndexEntries = 128;

  mutable std::recursive_mutex mu_;
  storage::BufferCache* cache_;
  const Clock* clock_;
  SuperBlock sb_;
  bool mounted_ = false;
  // Allocation rotors (see BitmapFindFree). Reset at mount; purely an
  // in-memory scan accelerator, never persisted.
  uint32_t inode_alloc_hint_ = 0;
  uint32_t block_alloc_hint_ = 0;
};

}  // namespace ficus::ufs

#endif  // FICUS_SRC_UFS_UFS_H_
