// Write-through LRU buffer cache in front of a BlockDevice. The UFS does
// all its block I/O through this cache; its hit/miss counters are what make
// the cold-versus-warm open experiments (P2/P3 in DESIGN.md) measurable.
//
// Thread-safe: one mutex covers the LRU list, map, stats, and epoch.
// Lock order: callers (UFS) may hold their own lock when entering; the
// cache only calls down into the BlockDevice, never back up.
#ifndef FICUS_SRC_STORAGE_BUFFER_CACHE_H_
#define FICUS_SRC_STORAGE_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/block_device.h"

namespace ficus::storage {

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

class BufferCache {
 public:
  // capacity_blocks == 0 disables caching (every access goes to the device).
  BufferCache(BlockDevice* device, uint32_t capacity_blocks);

  // Reads a block, serving from cache when possible.
  Status Read(BlockNum block, std::vector<uint8_t>& out);

  // Write-through: updates the cache copy and the device.
  Status Write(BlockNum block, const std::vector<uint8_t>& data);

  // Drops every cached block (simulates memory pressure / remount). Device
  // contents are unaffected because the cache is write-through.
  void Invalidate();

  // Drops one block if cached.
  void InvalidateBlock(BlockNum block);

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = CacheStats{};
  }

  // Bumped by every full Invalidate(). Layers that keep parsed copies of
  // block data (e.g. the UFS directory index) compare epochs to notice
  // that the backing store may have diverged underneath them. Targeted
  // InvalidateBlock() calls do NOT advance the epoch: they are issued by
  // the owning layer for blocks it just freed, so its parsed copies of
  // *other* blocks remain trustworthy.
  uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epoch_;
  }

  BlockDevice* device() { return device_; }

  size_t cached_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  struct Entry {
    BlockNum block;
    std::vector<uint8_t> data;
  };

  void Touch(std::list<Entry>::iterator it);
  void InsertLocked(BlockNum block, const std::vector<uint8_t>& data);

  mutable std::mutex mu_;
  BlockDevice* device_;
  uint32_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<BlockNum, std::list<Entry>::iterator> map_;
  CacheStats stats_;
  uint64_t epoch_ = 0;
};

}  // namespace ficus::storage

#endif  // FICUS_SRC_STORAGE_BUFFER_CACHE_H_
