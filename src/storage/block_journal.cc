#include "src/storage/block_journal.h"

#include <cstring>

namespace ficus::storage {

namespace {

// Intent-record block layout:
//   u32 magic
//   u32 state            0 = empty/unsealed, 1 = sealed
//   u32 count
//   u32 reserved (0)
//   count x { u32 target, u64 digest }
//   u64 checksum         FNV-1a over every preceding byte
// A header whose magic, checksum, or geometry fails to parse is treated as
// empty: the region starts zeroed and only a completed header write can
// produce a valid one, so anything else is pre-seal debris.
constexpr size_t kHeaderFixedBytes = 16;
constexpr size_t kRecordBytes = 12;

uint64_t Fnv64(const uint8_t* data, size_t size) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

void PutU32(std::vector<uint8_t>& out, size_t at, uint32_t v) {
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void PutU64(std::vector<uint8_t>& out, size_t at, uint64_t v) {
  std::memcpy(out.data() + at, &v, sizeof(v));
}

uint32_t GetU32(const std::vector<uint8_t>& in, size_t at) {
  uint32_t v = 0;
  std::memcpy(&v, in.data() + at, sizeof(v));
  return v;
}

uint64_t GetU64(const std::vector<uint8_t>& in, size_t at) {
  uint64_t v = 0;
  std::memcpy(&v, in.data() + at, sizeof(v));
  return v;
}

}  // namespace

BlockJournal::BlockJournal(BufferCache* cache, BlockNum start, uint32_t blocks)
    : cache_(cache), start_(start), blocks_(blocks) {}

Status BlockJournal::WriteHeader(uint32_t state, const std::vector<JournalRecord>& records) {
  size_t need = kHeaderFixedBytes + records.size() * kRecordBytes + sizeof(uint64_t);
  if (need > kBlockSize) {
    return NoSpaceError("journal intent record overflows its block");
  }
  std::vector<uint8_t> block(kBlockSize, 0);
  PutU32(block, 0, kJournalMagic);
  PutU32(block, 4, state);
  PutU32(block, 8, static_cast<uint32_t>(records.size()));
  size_t at = kHeaderFixedBytes;
  for (const JournalRecord& r : records) {
    PutU32(block, at, r.target);
    PutU64(block, at + 4, Fnv64(r.image.data(), r.image.size()));
    at += kRecordBytes;
  }
  PutU64(block, at, Fnv64(block.data(), at));
  return cache_->Write(start_, block);
}

StatusOr<BlockJournal::Header> BlockJournal::ReadHeader() {
  Header header;
  if (blocks_ < 2) {
    return header;  // no journal region: always empty
  }
  std::vector<uint8_t> block;
  FICUS_RETURN_IF_ERROR(cache_->Read(start_, block));
  if (GetU32(block, 0) != kJournalMagic) {
    return header;
  }
  uint32_t state = GetU32(block, 4);
  uint32_t count = GetU32(block, 8);
  size_t records_end = kHeaderFixedBytes + static_cast<size_t>(count) * kRecordBytes;
  if (count > capacity() || records_end + sizeof(uint64_t) > kBlockSize) {
    return header;
  }
  if (GetU64(block, records_end) != Fnv64(block.data(), records_end)) {
    return header;
  }
  header.state = state;
  header.records.reserve(count);
  header.digests.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    size_t at = kHeaderFixedBytes + static_cast<size_t>(i) * kRecordBytes;
    JournalRecord r;
    r.target = GetU32(block, at);
    header.records.push_back(std::move(r));
    header.digests.push_back(GetU64(block, at + 4));
  }
  return header;
}

Status BlockJournal::Stage(const std::vector<JournalRecord>& records) {
  if (blocks_ < 2) {
    return NotSupportedError("device has no journal region");
  }
  if (records.empty()) {
    return InvalidArgumentError("empty journal commit");
  }
  if (records.size() > capacity()) {
    return NoSpaceError("commit exceeds journal capacity");
  }
  for (const JournalRecord& r : records) {
    if (r.image.size() != kBlockSize) {
      return InvalidArgumentError("journal image is not one full block");
    }
    if (r.target >= start_ && r.target < start_ + blocks_) {
      return InvalidArgumentError("journal record targets the journal region");
    }
  }
  // Never overwrite a sealed intent: it is a committed update that has
  // not been replayed yet, and staging over it would lose the commit.
  FICUS_ASSIGN_OR_RETURN(Header current, ReadHeader());
  if (current.state == 1) {
    return InternalError("journal holds an unreplayed sealed commit");
  }
  // Images first, intent record last: until the header lands, recovery
  // sees at worst a stale header over fresh images — which the per-record
  // digests reject only if it were sealed, and a sealed header is always
  // cleared before the next Stage.
  for (size_t i = 0; i < records.size(); ++i) {
    FICUS_RETURN_IF_ERROR(cache_->Write(start_ + 1 + static_cast<BlockNum>(i),
                                        records[i].image));
  }
  return WriteHeader(0, records);
}

Status BlockJournal::Seal() {
  FICUS_ASSIGN_OR_RETURN(Header header, ReadHeader());
  if (header.records.empty()) {
    return InternalError("sealing an empty journal");
  }
  std::vector<uint8_t> block;
  FICUS_RETURN_IF_ERROR(cache_->Read(start_, block));
  PutU32(block, 4, 1);
  // The state is covered by the trailing checksum; recompute it.
  size_t records_end = kHeaderFixedBytes + header.records.size() * kRecordBytes;
  PutU64(block, records_end, Fnv64(block.data(), records_end));
  return cache_->Write(start_, block);
}

Status BlockJournal::Apply() {
  FICUS_ASSIGN_OR_RETURN(Header header, ReadHeader());
  for (size_t i = 0; i < header.records.size(); ++i) {
    std::vector<uint8_t> image;
    FICUS_RETURN_IF_ERROR(cache_->Read(start_ + 1 + static_cast<BlockNum>(i), image));
    if (Fnv64(image.data(), image.size()) != header.digests[i]) {
      return CorruptError("staged journal image fails its checksum");
    }
    FICUS_RETURN_IF_ERROR(cache_->Write(header.records[i].target, image));
  }
  return OkStatus();
}

Status BlockJournal::Clear() {
  if (blocks_ < 2) {
    return OkStatus();
  }
  std::vector<uint8_t> zero(kBlockSize, 0);
  return cache_->Write(start_, zero);
}

StatusOr<JournalRecoveryResult> BlockJournal::Recover() {
  JournalRecoveryResult result;
  if (blocks_ < 2) {
    return result;
  }
  FICUS_ASSIGN_OR_RETURN(Header header, ReadHeader());
  if (header.state != 1) {
    // Unsealed (or no) intent: the commit never happened. Drop any staged
    // debris so the next commit starts clean.
    if (!header.records.empty()) {
      FICUS_RETURN_IF_ERROR(Clear());
    }
    return result;
  }
  FICUS_RETURN_IF_ERROR(Apply());
  FICUS_RETURN_IF_ERROR(Clear());
  result.replayed = true;
  result.records = static_cast<uint32_t>(header.records.size());
  return result;
}

StatusOr<bool> BlockJournal::SealedOnDisk() {
  FICUS_ASSIGN_OR_RETURN(Header header, ReadHeader());
  return header.state == 1;
}

}  // namespace ficus::storage
