#include "src/storage/block_device.h"

namespace ficus::storage {

BlockDevice::BlockDevice(uint32_t block_count)
    : block_count_(block_count),
      blocks_(block_count, std::vector<uint8_t>(kBlockSize, 0)) {}

Status BlockDevice::Read(BlockNum block, std::vector<uint8_t>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (block >= block_count_) {
    return IoError("read past end of device");
  }
  ++stats_.reads;
  out = blocks_[block];
  return OkStatus();
}

Status BlockDevice::Write(BlockNum block, const std::vector<uint8_t>& data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (block >= block_count_) {
    return IoError("write past end of device");
  }
  if (data.size() != kBlockSize) {
    return InvalidArgumentError("write must be exactly one block");
  }
  if (crashed_) {
    ++stats_.dropped_writes;
    return OkStatus();  // The caller believes the write happened.
  }
  ++stats_.writes;
  blocks_[block] = data;
  return OkStatus();
}

}  // namespace ficus::storage
