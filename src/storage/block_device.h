// Simulated block device backing a UFS instance. Counts every read and
// write so benchmarks can reproduce the paper's section 6 I/O accounting
// (4 extra I/Os on a cold Ficus open, none on a warm one). Supports fault
// injection: a crash point after which writes are dropped, used to test the
// shadow-file atomic commit recovery path. Thread-safe: one mutex
// serializes block I/O (the device is the bottom of the lock order; it
// never calls out while holding it).
#ifndef FICUS_SRC_STORAGE_BLOCK_DEVICE_H_
#define FICUS_SRC_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/status.h"

namespace ficus::storage {

constexpr uint32_t kBlockSize = 4096;

using BlockNum = uint32_t;

// Cumulative I/O counters, readable by tests and benchmarks.
struct DeviceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t dropped_writes = 0;  // writes swallowed after InjectCrash()
};

class BlockDevice {
 public:
  // Creates a device with block_count zeroed blocks.
  explicit BlockDevice(uint32_t block_count);

  uint32_t block_count() const { return block_count_; }

  // Reads block into out (exactly kBlockSize bytes).
  Status Read(BlockNum block, std::vector<uint8_t>& out);

  // Writes exactly kBlockSize bytes to block. After InjectCrash() the write
  // is silently dropped (the "power failed before the platter moved" model).
  Status Write(BlockNum block, const std::vector<uint8_t>& data);

  DeviceStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DeviceStats{};
  }

  // All subsequent writes are dropped until ClearCrash(). Reads still serve
  // the pre-crash contents, modeling recovery from the surviving image.
  void InjectCrash() {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_ = true;
  }
  void ClearCrash() {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_ = false;
  }
  bool crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }

 private:
  mutable std::mutex mu_;
  uint32_t block_count_;
  std::vector<std::vector<uint8_t>> blocks_;
  DeviceStats stats_;
  bool crashed_ = false;
};

}  // namespace ficus::storage

#endif  // FICUS_SRC_STORAGE_BLOCK_DEVICE_H_
