// A small redo journal over a reserved range of device blocks — the
// "commit function in the storage layer" the Ficus paper wishes for in
// section 7 ("putting a commit function into the storage layer") and
// footnote 5 concedes the shadow-file commit lacks. A commit stages the
// new block images inside the journal region, seals a one-block intent
// record (the commit point), applies the images to their home blocks, and
// finally retires the intent. Recovery replays a sealed journal and
// discards an unsealed one, so the set of home blocks changes atomically
// across a crash at any write boundary.
//
// Region layout ([start, start + blocks) on the device):
//   block start            intent record (see header format in the .cc)
//   block start + 1 + i    staged image for the i-th record
//
// The journal itself holds no locks: callers (the UFS) already serialize
// commits and recovery under their own lock, and all I/O goes through the
// write-through BufferCache so "written" means "on the device".
#ifndef FICUS_SRC_STORAGE_BLOCK_JOURNAL_H_
#define FICUS_SRC_STORAGE_BLOCK_JOURNAL_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/storage/buffer_cache.h"

namespace ficus::storage {

constexpr uint32_t kJournalMagic = 0xF1C0A17E;

// One redo record: a home block and the image it must hold after commit.
struct JournalRecord {
  BlockNum target = 0;
  std::vector<uint8_t> image;  // exactly kBlockSize bytes
};

struct JournalRecoveryResult {
  bool replayed = false;  // a sealed intent was found and applied
  uint32_t records = 0;   // block images the replayed intent carried
};

class BlockJournal {
 public:
  // The journal owns [start, start + blocks) on the cache's device;
  // blocks >= 2 (one intent block + at least one image slot).
  BlockJournal(BufferCache* cache, BlockNum start, uint32_t blocks);

  // Image slots available per commit.
  uint32_t capacity() const { return blocks_ > 0 ? blocks_ - 1 : 0; }

  // Writes the staged images plus an UNSEALED intent record. A crash
  // anywhere in here (or after) is a no-op on recovery. Targets must lie
  // outside the journal region and each image must be one full block.
  Status Stage(const std::vector<JournalRecord>& records);

  // Flips the intent record to sealed — the commit point. From here the
  // commit is durable: recovery replays it even if nothing else runs.
  Status Seal();

  // Writes every staged image to its home block (re-read from the journal
  // region, so Apply works identically during commit and during replay).
  Status Apply();

  // Erases the intent record, retiring the commit. Idempotent.
  Status Clear();

  // Mount-time recovery: replays a sealed, intact intent into the home
  // blocks and clears it; silently clears an unsealed or empty one. A
  // sealed intent whose staged images fail their checksums is corruption
  // (the crash model never tears a sealed journal) and errors out.
  StatusOr<JournalRecoveryResult> Recover();

  // Does the on-disk intent record parse as sealed? (fsck probe; never
  // mutates the region.)
  StatusOr<bool> SealedOnDisk();

 private:
  struct Header {
    uint32_t state = 0;  // 0 = empty/unsealed, 1 = sealed
    std::vector<JournalRecord> records;  // images empty; digests checked on read
    std::vector<uint64_t> digests;
  };

  Status WriteHeader(uint32_t state, const std::vector<JournalRecord>& records);
  // Parses the intent block. A zeroed or foreign block reads as an empty
  // unsealed header rather than an error (a fresh format never writes one).
  StatusOr<Header> ReadHeader();

  BufferCache* cache_;
  BlockNum start_;
  uint32_t blocks_;
};

}  // namespace ficus::storage

#endif  // FICUS_SRC_STORAGE_BLOCK_JOURNAL_H_
