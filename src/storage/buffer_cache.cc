#include "src/storage/buffer_cache.h"

namespace ficus::storage {

BufferCache::BufferCache(BlockDevice* device, uint32_t capacity_blocks)
    : device_(device), capacity_(capacity_blocks) {}

void BufferCache::Touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void BufferCache::InsertLocked(BlockNum block, const std::vector<uint8_t>& data) {
  if (capacity_ == 0) {
    return;
  }
  lru_.push_front(Entry{block, data});
  map_[block] = lru_.begin();
  while (map_.size() > capacity_) {
    ++stats_.evictions;
    map_.erase(lru_.back().block);
    lru_.pop_back();
  }
}

Status BufferCache::Read(BlockNum block, std::vector<uint8_t>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(block);
  if (it != map_.end()) {
    ++stats_.hits;
    Touch(it->second);
    out = it->second->data;
    return OkStatus();
  }
  ++stats_.misses;
  FICUS_RETURN_IF_ERROR(device_->Read(block, out));
  InsertLocked(block, out);
  return OkStatus();
}

Status BufferCache::Write(BlockNum block, const std::vector<uint8_t>& data) {
  std::lock_guard<std::mutex> lock(mu_);
  FICUS_RETURN_IF_ERROR(device_->Write(block, data));
  auto it = map_.find(block);
  if (it != map_.end()) {
    it->second->data = data;
    Touch(it->second);
  } else {
    InsertLocked(block, data);
  }
  return OkStatus();
}

void BufferCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  ++epoch_;
}

void BufferCache::InvalidateBlock(BlockNum block) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(block);
  if (it != map_.end()) {
    lru_.erase(it->second);
    map_.erase(it);
  }
}

}  // namespace ficus::storage
