// A simulated Ficus cluster: clock + network + hosts, with conveniences
// for creating replicated volumes, mounting them, scripting partitions,
// and pumping the propagation/reconciliation daemons deterministically.
#ifndef FICUS_SRC_SIM_CLUSTER_H_
#define FICUS_SRC_SIM_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/placement.h"
#include "src/sim/host.h"

namespace ficus::sim {

class Cluster {
 public:
  // The runtime options pick the execution mode for every host in the
  // cluster: deterministic (default — all daemons are pumped inline,
  // schedules replay exactly) or threaded (real NFS service pools and
  // propagation worker threads; same protocols, real interleavings).
  explicit Cluster(const RuntimeOptions& runtime_options = RuntimeOptions{})
      : runtime_(runtime_options), network_(&clock_) {}

  SimClock& clock() { return clock_; }
  net::Network& network() { return network_; }
  Runtime& runtime() { return runtime_; }

  FicusHost* AddHost(const std::string& name, const HostConfig& config = HostConfig{});

  // Scale-out convenience: adds `count` identically configured hosts
  // named `<prefix>0`..`<prefix>N-1` (the 50-100 host clusters of the
  // churn tier and bench_availability).
  std::vector<FicusHost*> AddHosts(size_t count, const HostConfig& config = HostConfig{},
                                   const std::string& prefix = "h");

  FicusHost* host(size_t index) { return hosts_[index].get(); }
  size_t host_count() const { return hosts_.size(); }
  FicusHost* HostById(net::HostId id);

  // Creates a volume with one replica per listed host (replica ids 1..n,
  // the first listed host seeds the root). Every storing host learns all
  // replica locations, like an installation-time fstab.
  StatusOr<repl::VolumeId> CreateVolume(const std::vector<FicusHost*>& replica_hosts);

  // Policy-driven placement: picks `replication_factor` hosts with
  // cluster::PickReplicaHosts (load = volume replicas already stored per
  // host) and creates the volume there. kSpread lands replicas on the
  // least-loaded hosts so volumes spread across the cluster instead of
  // piling onto the first few.
  StatusOr<repl::VolumeId> CreateVolumePlaced(
      size_t replication_factor,
      cluster::PlacementPolicy policy = cluster::PlacementPolicy::kSpread);

  // Tells `host` (which need not store a replica) where every replica of
  // `volume` lives, then mounts it.
  StatusOr<repl::LogicalLayer*> MountEverywhere(FicusHost* host, const repl::VolumeId& volume);

  // Adds one more replica of an existing volume on `host` at runtime ("a
  // client may change the location and quantity of file replicas whenever
  // a file replica is available", section 3.1). The new replica starts
  // empty and is filled by reconciliation; every known host learns the
  // placement. Returns the new replica's id.
  StatusOr<repl::ReplicaId> AddReplica(const repl::VolumeId& volume, FicusHost* host);

  // Retires `host`'s replica of `volume`: reconciles its state into the
  // surviving replicas first, then destroys it and spreads the news.
  // Refuses to remove the last replica.
  Status RemoveReplica(const repl::VolumeId& volume, FicusHost* host);

  // Replica migration = AddReplica(to) + fill + RemoveReplica(from) —
  // "a client may change the location and quantity of file replicas
  // whenever a file replica is available" (section 3.1).
  Status MoveReplica(const repl::VolumeId& volume, FicusHost* from, FicusHost* to);

  // --- daemon pumps ---
  // One propagation pass on every host.
  Status RunPropagationEverywhere();
  // One heartbeat poll on every host (hosts without a monitor are
  // no-ops): probes due peers, applies verdicts, runs recovery resyncs.
  Status PollHeartbeatsEverywhere();
  // Reconciliation rounds until no replica changes or max_rounds is hit.
  // Returns the number of rounds executed.
  StatusOr<int> ReconcileUntilQuiescent(int max_rounds = 8);

  // --- partition scripting (thin wrappers over the network) ---
  void Partition(const std::vector<std::vector<FicusHost*>>& groups);
  void Heal() { network_.Heal(); }

  // --- fault scripting ---
  // Installs `plan` on the cluster network (replacing any previous one)
  // and returns it for further scripting; tests and benches declare a
  // whole failure scenario this way, e.g.
  //   cluster.InstallFaultPlan(net::FaultPlan::Lossy(seed));
  net::FaultPlan& InstallFaultPlan(net::FaultPlan plan) {
    return network_.InstallFaultPlan(std::move(plan));
  }
  // Back to a perfect network (pending reordered datagrams are delivered).
  void ClearFaults() {
    network_.FlushDeferredDatagrams();
    network_.ClearFaultPlan();
  }

  // Advances simulated time.
  void Sleep(SimTime delta) { clock_.Advance(delta); }

  // Advances simulated time by `duration`, pumping propagation daemons
  // every `propagation_period`, full reconciliation every
  // `reconcile_period`, and heartbeat polls every `heartbeat_period` —
  // the wall-clock scheduling a kernel Ficus would get from its daemons.
  // Periods of 0 disable that pump, except heartbeats: with a zero
  // heartbeat_period the monitors are still polled at every other wake
  // point (each monitor's own interval gates actual probes).
  Status RunFor(SimTime duration, SimTime propagation_period, SimTime reconcile_period,
                SimTime heartbeat_period = 0);

 private:
  // Declared before the hosts so worker threads are joined (host
  // destructors) before the runtime they came from goes away.
  Runtime runtime_;
  SimClock clock_;
  net::Network network_;
  std::vector<std::unique_ptr<FicusHost>> hosts_;
  std::map<repl::VolumeId, std::vector<std::pair<repl::ReplicaId, net::HostId>>> volumes_;
  // Replica ids are never reused within a volume: a recycled id would
  // alias stale per-replica state on peers (cached proxies, queued update
  // notifications) onto an unrelated new replica.
  std::map<repl::VolumeId, repl::ReplicaId> next_replica_;
  uint32_t next_volume_ = 1;
};

}  // namespace ficus::sim

#endif  // FICUS_SRC_SIM_CLUSTER_H_
