// Synthetic workload with tunable file-reference locality.
//
// The paper's performance argument (sections 1, 2.6) leans on measured
// UNIX file-reference locality [Floyd'86]: the dual name mapping is cheap
// *because* accesses concentrate on recently used files and directories,
// so the buffer cache absorbs the extra I/Os. This generator reproduces
// that workload shape: a directory tree with configurable fan-out and a
// Zipf-distributed access stream whose skew knob moves between uniform
// (no locality) and heavily skewed (strong locality) — experiment P4.
#ifndef FICUS_SRC_SIM_WORKLOAD_H_
#define FICUS_SRC_SIM_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/vfs/vnode.h"

namespace ficus::sim {

struct WorkloadConfig {
  int directories = 16;       // flat set of directories under the root
  int files_per_directory = 16;
  int file_size_bytes = 1024;
  double zipf_skew = 1.0;     // 0 = uniform, ~1 = measured UNIX locality
  double write_fraction = 0.1;
};

struct WorkloadStats {
  uint64_t operations = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t failures = 0;
};

class Workload {
 public:
  Workload(WorkloadConfig config, uint64_t seed) : config_(config), rng_(seed) {}

  // Creates the directory tree and files on `fs`.
  Status Populate(vfs::Vfs* fs);

  // Runs `ops` open/read/close or write operations drawn from the Zipf
  // stream against `fs` (which may be a different mount of the same data).
  Status Run(vfs::Vfs* fs, int ops);

  // Path of file `rank` in the popularity order.
  std::string PathOf(int rank) const;

  int file_count() const { return config_.directories * config_.files_per_directory; }
  const WorkloadStats& stats() const { return stats_; }

 private:
  WorkloadConfig config_;
  Rng rng_;
  WorkloadStats stats_;
};

}  // namespace ficus::sim

#endif  // FICUS_SRC_SIM_WORKLOAD_H_
