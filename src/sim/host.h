// One simulated Ficus host: the full stack of Figure 1/Figure 2 —
// simulated disk, buffer cache, UFS, Ficus physical layers (one per
// locally stored volume replica), an NFS server exporting them to peers,
// NFS clients + RemotePhysical proxies for reaching peers, and Ficus
// logical layers (one per grafted volume) on top.
//
// The host implements three plug interfaces of the repl module:
//   * ReplicaResolver — maps (volume, replica) to a PhysicalApi, local or
//     across NFS, using the per-host volume registry (no global tables);
//   * UpdateNotifier — multicasts update notifications to the hosts known
//     to store replicas of the updated file's volume;
//   * GraftResolver — autografts volumes on demand when path translation
//     encounters a graft point.
#ifndef FICUS_SRC_SIM_HOST_H_
#define FICUS_SRC_SIM_HOST_H_

#include <map>
#include <mutex>
#include <optional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/heartbeat.h"
#include "src/common/runtime.h"
#include "src/nfs/client.h"
#include "src/nfs/server.h"
#include "src/repl/conflict_log.h"
#include "src/repl/facade.h"
#include "src/repl/logical.h"
#include "src/repl/physical.h"
#include "src/repl/propagation.h"
#include "src/repl/reconcile.h"
#include "src/repl/resolver.h"
#include "src/storage/block_device.h"
#include "src/storage/buffer_cache.h"
#include "src/ufs/ufs.h"
#include "src/vol/graft.h"
#include "src/vol/registry.h"

namespace ficus::sim {

struct HostConfig {
  uint32_t disk_blocks = 16 * 1024;   // 64 MiB
  uint32_t inode_count = 4 * 1024;
  uint32_t cache_blocks = 512;        // 2 MiB buffer cache
  // NFS transport caches for inter-layer traffic are disabled by default:
  // the paper (section 2.2) complains that NFS's caches are "not fully
  // controllable" and misbehave under layers that cannot adopt their
  // assumptions — the simulation gives the control knob real NFS lacked.
  SimTime transport_attr_ttl = 0;
  SimTime transport_dnlc_ttl = 0;
  // Retry/backoff policy for the inter-host NFS transports (engaged only
  // when a FaultPlan makes the network lose messages).
  nfs::RetryPolicy transport_retry;
  repl::PropagationConfig propagation;
  // Options for every physical layer this host creates (attribute
  // placement, selective-replication policy, orphanage).
  repl::PhysicalOptions physical;
  // Options for every reconciler this host creates (digest-guided vs
  // full-walk subtree protocol).
  repl::ReconcileOptions reconcile;
  // Membership/failure detection. Disabled by default (interval 0): the
  // host answers peers' pings but runs no monitor of its own, so every
  // pre-membership seeded workload replays byte-identically. Setting an
  // interval turns the host into a full membership participant: it
  // watches every peer it learns a replica location for, feeds verdicts
  // to its daemons through the resolver, and resyncs on recovery.
  cluster::HeartbeatConfig heartbeat{.interval = 0};
};

// The datagram channel update notifications ride on.
inline constexpr char kUpdateChannel[] = "ficus.update";

class FicusHost : public repl::ReplicaResolver,
                  public repl::UpdateNotifier,
                  public repl::GraftResolver {
 public:
  // `runtime` (borrowed, optional) selects the execution mode. Under a
  // threaded runtime the host runs a bounded NFS service pool and one
  // propagation worker thread per local replica; with a null or
  // deterministic runtime everything runs inline on the caller's thread,
  // exactly as before.
  FicusHost(net::Network* network, SimClock* clock, const std::string& name,
            const HostConfig& config = HostConfig{}, Runtime* runtime = nullptr);
  ~FicusHost();  // out of line: ExportVfs is incomplete here

  net::HostId id() const { return id_; }
  const std::string& name() const { return name_; }

  // --- volume lifecycle ---
  // Creates a new volume replica stored on this host's UFS and exports it.
  StatusOr<repl::PhysicalLayer*> CreateVolumeReplica(const repl::VolumeId& volume,
                                                     repl::ReplicaId replica,
                                                     bool first_replica);
  // Tells this host that `replica` of `volume` lives at `host` (the
  // "fstab" knowledge for root volumes; graft points teach the rest).
  void LearnReplicaLocation(const repl::VolumeId& volume, repl::ReplicaId replica,
                            net::HostId host);

  // Destroys this host's replica of `volume`: storage, daemons, export.
  // Callers must first make sure the remaining replicas carry the state
  // (reconcile), or partition-time updates held only here are lost.
  Status DropVolumeReplica(const repl::VolumeId& volume);

  // Retires this host's cached remote proxy for a peer replica that no
  // longer exists, so later Access() falls through to the registry. The
  // proxy object itself is parked, not freed: daemon passes already
  // holding its pointer must stay safe (their next RPC fails cleanly with
  // a stale handle or a missing export).
  void ForgetRemoteReplica(const repl::VolumeId& volume, repl::ReplicaId replica);

  // The logical layer for a volume, grafting it if needed. Requires the
  // host to know at least one replica location. Explicit mounts are
  // pinned (never pruned); autografts are not.
  StatusOr<repl::LogicalLayer*> MountVolume(const repl::VolumeId& volume, bool pinned = true);

  // --- failure injection ---
  // Hard-crashes the host: every in-flight and future disk write is
  // dropped until Reboot(). Pair with network().SetHostUp(id, false) to
  // also take it off the network.
  void Crash();
  // Brings the host back: clears the crash flag, drops the page cache,
  // re-attaches every local physical layer to the surviving disk image
  // (running shadow recovery), and restarts the NFS server's handle
  // table. Remote proxies recover via their ESTALE refreshers.
  Status Reboot();

  // --- daemons (explicit pumps; deterministic) ---
  // Runs the update-propagation daemon of every local physical layer.
  Status RunPropagation();
  // Runs the full reconciliation protocol of every local replica against
  // every known peer replica.
  Status RunReconciliation();
  // Drops grafts idle longer than `horizon`.
  int PruneGrafts(SimTime horizon);

  // --- membership (heartbeat failure detection) ---
  // Probes every watched peer whose probe is due, applies the detector's
  // state machine, and runs recovery resync (graft-point reconciliation
  // against the returned peer's replicas) for every dead->alive
  // transition. No-op without a monitor or while this host is crashed.
  Status PollHeartbeats();
  // The monitor, or null when config.heartbeat.interval == 0.
  cluster::HeartbeatMonitor* heartbeat() { return heartbeat_.get(); }

  // --- ReplicaResolver ---
  std::vector<repl::ReplicaId> ReplicasOf(const repl::VolumeId& volume) override;
  StatusOr<repl::PhysicalApi*> Access(const repl::VolumeId& volume,
                                      repl::ReplicaId replica) override;
  repl::ReplicaId PreferredReplica(const repl::VolumeId& volume) override;
  repl::PeerHealth HealthOf(const repl::VolumeId& volume,
                            repl::ReplicaId replica) override;
  uint64_t ReadCost(const repl::VolumeId& volume, repl::ReplicaId replica) override;

  // --- UpdateNotifier ---
  void NotifyUpdate(const repl::GlobalFileId& id, const repl::VersionVector& vv,
                    repl::ReplicaId source) override;

  // --- GraftResolver ---
  StatusOr<vfs::VnodePtr> ResolveGraft(const repl::GlobalFileId& graft_point) override;

  // --- accessors for tests & benchmarks ---
  storage::BlockDevice& device() { return device_; }
  storage::BufferCache& buffer_cache() { return cache_; }
  ufs::Ufs& ufs() { return ufs_; }
  vol::VolumeRegistry& registry() { return registry_; }
  vol::GraftTable& grafts() { return grafts_; }
  repl::ConflictLog& conflict_log() { return conflict_log_; }
  nfs::NfsServer& nfs_server() { return *server_; }
  // Host-level registry the inter-host NFS transports report into; the
  // `nfs.client.*` / `nfs.retries.*` cells here aggregate over all peers.
  MetricRegistry& metrics() { return metrics_; }
  std::optional<repl::PropagationStats> propagation_stats(const repl::VolumeId& volume) const;
  const repl::ReconcileStats* reconcile_stats(const repl::VolumeId& volume) const;

  // Name a facade is exported under.
  static std::string ExportName(const repl::VolumeId& volume, repl::ReplicaId replica);

 private:
  // Per local volume replica: the physical layer and its daemons. The
  // worker (threaded runtime only) is declared last so it joins before
  // the daemon it drives is torn down.
  struct LocalReplica {
    std::unique_ptr<repl::PhysicalLayer> physical;
    std::unique_ptr<repl::PhysicalFacadeVfs> facade;
    std::unique_ptr<repl::PropagationDaemon> propagation;
    std::unique_ptr<repl::Reconciler> reconciler;
    std::unique_ptr<repl::PropagationWorker> worker;
  };

  // Vfs multiplexing all exported facades, served by one NfsServer.
  class ExportVfs;

  void HandleUpdateDatagram(net::HostId sender, const net::Payload& payload);
  StatusOr<repl::PhysicalApi*> ConnectRemote(const repl::VolumeId& volume,
                                             repl::ReplicaId replica, net::HostId host);
  // Recovery resync: reconciles every local replica against the replicas
  // `peer` stores, pulling the state the peer accepted while we thought
  // it dead. kUnreachable is swallowed (it may have died again).
  Status ResyncWithPeer(net::HostId peer);
  bool threaded() const { return runtime_ != nullptr && runtime_->threaded(); }

  net::Network* network_;
  SimClock* clock_;
  std::string name_;
  net::HostId id_;
  HostConfig config_;
  Runtime* runtime_ = nullptr;

  storage::BlockDevice device_;
  storage::BufferCache cache_;
  ufs::Ufs ufs_;

  vol::VolumeRegistry registry_;
  vol::GraftTable grafts_;
  repl::ConflictLog conflict_log_;
  MetricRegistry metrics_;
  // Failure detector (null when membership is disabled). The monitor has
  // its own lock; it is below locals_mu_/remote_mu_ in the lock order —
  // resolver calls made under those locks may query it, and it never
  // calls back into the host while holding its lock.
  std::unique_ptr<cluster::HeartbeatMonitor> heartbeat_;

  // Guards the locals_ map STRUCTURE: export lookups and update-datagram
  // fan-in run on service-pool threads while the control plane (main
  // thread) creates or drops replicas. Never held across an RPC — daemon
  // pumps snapshot the daemon pointers and run unlocked, since a cycle of
  // hosts each holding its map lock while awaiting the other's NFS reply
  // would deadlock.
  mutable std::mutex locals_mu_;
  std::map<std::pair<repl::VolumeId, repl::ReplicaId>, LocalReplica> locals_;
  std::unique_ptr<ExportVfs> export_vfs_;
  std::unique_ptr<nfs::NfsServer> server_;
  // Bounded NFS service pool (threaded runtime only; null otherwise).
  std::unique_ptr<Executor> service_pool_;

  // Guards the transport/proxy maps: propagation workers and reconcilers
  // connect to peers lazily and may race on first contact. Released while
  // the connection handshake RPCs run; a losing racer keeps the winner's
  // entry.
  mutable std::mutex remote_mu_;
  std::map<net::HostId, std::unique_ptr<nfs::NfsClient>> transports_;
  std::map<std::pair<repl::VolumeId, repl::ReplicaId>, std::unique_ptr<repl::RemotePhysical>>
      proxies_;
  // Proxies for retired peer replicas, parked here so pointers handed out
  // by Access() before the retire stay valid for the rest of the host's
  // life (ForgetRemoteReplica).
  std::vector<std::unique_ptr<repl::RemotePhysical>> retired_proxies_;

  uint32_t next_container_ = 1;
};

}  // namespace ficus::sim

#endif  // FICUS_SRC_SIM_HOST_H_
