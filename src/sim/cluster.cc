#include "src/sim/cluster.h"

#include <algorithm>

namespace ficus::sim {

FicusHost* Cluster::AddHost(const std::string& name, const HostConfig& config) {
  hosts_.push_back(std::make_unique<FicusHost>(&network_, &clock_, name, config, &runtime_));
  return hosts_.back().get();
}

std::vector<FicusHost*> Cluster::AddHosts(size_t count, const HostConfig& config,
                                          const std::string& prefix) {
  std::vector<FicusHost*> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(AddHost(prefix + std::to_string(i), config));
  }
  return out;
}

FicusHost* Cluster::HostById(net::HostId id) {
  for (auto& host : hosts_) {
    if (host->id() == id) {
      return host.get();
    }
  }
  return nullptr;
}

StatusOr<repl::VolumeId> Cluster::CreateVolume(const std::vector<FicusHost*>& replica_hosts) {
  if (replica_hosts.empty()) {
    return InvalidArgumentError("a volume needs at least one replica host");
  }
  repl::VolumeId volume{replica_hosts.front()->id(), next_volume_++};
  std::vector<std::pair<repl::ReplicaId, net::HostId>> placement;
  for (size_t i = 0; i < replica_hosts.size(); ++i) {
    repl::ReplicaId replica = static_cast<repl::ReplicaId>(i + 1);
    FICUS_RETURN_IF_ERROR(
        replica_hosts[i]->CreateVolumeReplica(volume, replica, /*first_replica=*/i == 0)
            .status());
    placement.emplace_back(replica, replica_hosts[i]->id());
  }
  // Installation-time knowledge: each storing host learns its peers.
  for (FicusHost* host : replica_hosts) {
    for (const auto& [replica, host_id] : placement) {
      host->LearnReplicaLocation(volume, replica, host_id);
    }
  }
  volumes_[volume] = placement;
  next_replica_[volume] = static_cast<repl::ReplicaId>(placement.size() + 1);
  // Bring later replicas' roots up to the seed's state so all roots share
  // a common history.
  for (FicusHost* host : replica_hosts) {
    FICUS_RETURN_IF_ERROR(host->RunReconciliation());
  }
  return volume;
}

StatusOr<repl::VolumeId> Cluster::CreateVolumePlaced(size_t replication_factor,
                                                     cluster::PlacementPolicy policy) {
  if (replication_factor == 0 || replication_factor > hosts_.size()) {
    return InvalidArgumentError("replication factor must be in [1, host count]");
  }
  std::vector<size_t> load;
  load.reserve(hosts_.size());
  for (auto& host : hosts_) {
    load.push_back(host->registry().AllLocal().size());
  }
  std::vector<FicusHost*> picked;
  for (size_t index : cluster::PickReplicaHosts(load, replication_factor, policy)) {
    picked.push_back(hosts_[index].get());
  }
  return CreateVolume(picked);
}

StatusOr<repl::LogicalLayer*> Cluster::MountEverywhere(FicusHost* host,
                                                       const repl::VolumeId& volume) {
  auto it = volumes_.find(volume);
  if (it != volumes_.end()) {
    for (const auto& [replica, host_id] : it->second) {
      host->LearnReplicaLocation(volume, replica, host_id);
    }
  }
  return host->MountVolume(volume);
}

StatusOr<repl::ReplicaId> Cluster::AddReplica(const repl::VolumeId& volume, FicusHost* host) {
  auto it = volumes_.find(volume);
  if (it == volumes_.end()) {
    return NotFoundError("unknown volume " + volume.ToString());
  }
  if (host->registry().LocalReplica(volume) != nullptr) {
    return ExistsError("host already stores a replica of " + volume.ToString());
  }
  repl::ReplicaId replica = 0;
  for (const auto& [id, host_id] : it->second) {
    replica = std::max(replica, id);
  }
  ++replica;
  // Skip past every id ever issued for this volume, not just the live
  // ones — see next_replica_.
  replica = std::max(replica, next_replica_[volume]);
  next_replica_[volume] = replica + 1;
  FICUS_RETURN_IF_ERROR(
      host->CreateVolumeReplica(volume, replica, /*first_replica=*/false).status());
  it->second.emplace_back(replica, host->id());
  // Everyone who stores a replica learns the new placement; the new host
  // learns all of them.
  for (auto& h : hosts_) {
    for (const auto& [id, host_id] : it->second) {
      if (h->registry().LocalReplica(volume) != nullptr || h.get() == host) {
        h->LearnReplicaLocation(volume, id, host_id);
      }
    }
  }
  // First fill.
  FICUS_RETURN_IF_ERROR(host->RunReconciliation());
  return replica;
}

namespace {
// The root rollup digest of one locally stored replica, for the
// safe-retire gate below.
StatusOr<uint64_t> RootSubtreeDigest(repl::PhysicalLayer* layer) {
  FICUS_ASSIGN_OR_RETURN(std::vector<repl::SubtreeDigest> rows,
                         layer->GetSubtreeDigests({repl::kRootFileId}));
  if (rows.size() != 1 || !rows.front().status.ok()) {
    return InternalError("root subtree digest unavailable");
  }
  return rows.front().subtree_digest;
}
}  // namespace

Status Cluster::RemoveReplica(const repl::VolumeId& volume, FicusHost* host) {
  auto it = volumes_.find(volume);
  if (it == volumes_.end()) {
    return NotFoundError("unknown volume " + volume.ToString());
  }
  if (it->second.size() <= 1) {
    return InvalidArgumentError("refusing to remove the last replica");
  }
  // Push any state only this replica holds out to the survivors.
  FICUS_RETURN_IF_ERROR(host->RunReconciliation());
  FICUS_RETURN_IF_ERROR(ReconcileUntilQuiescent().status());
  repl::PhysicalLayer* local = host->registry().LocalReplica(volume);
  if (local == nullptr) {
    return NotFoundError("host stores no replica of " + volume.ToString());
  }
  repl::ReplicaId replica = local->replica_id();
  // Safe-retire gate: at least one survivor must provably carry
  // everything this replica does (equal root rollup digests) before the
  // bytes are destroyed. Under partitions or message loss the push above
  // can silently reach nobody — without this check a drop would discard
  // the only copy of partition-era updates.
  FICUS_ASSIGN_OR_RETURN(uint64_t doomed_digest, RootSubtreeDigest(local));
  bool covered = false;
  for (const auto& [survivor_id, survivor_host] : it->second) {
    if (survivor_id == replica) {
      continue;
    }
    if (!network_.HostUp(survivor_host)) {
      // A crashed survivor's in-memory digest may cover state its dropped
      // disk writes never made durable — it proves nothing.
      continue;
    }
    FicusHost* other = HostById(survivor_host);
    repl::PhysicalLayer* layer = other != nullptr && other != host
                                     ? other->registry().LocalReplica(volume)
                                     : nullptr;
    if (layer == nullptr) {
      continue;
    }
    auto digest = RootSubtreeDigest(layer);
    if (digest.ok() && digest.value() == doomed_digest) {
      covered = true;
      break;
    }
  }
  if (!covered) {
    return BusyError("refusing to retire replica " + std::to_string(replica) + " of " +
                     volume.ToString() + ": no survivor has absorbed its state");
  }
  FICUS_RETURN_IF_ERROR(host->DropVolumeReplica(volume));
  auto& placement = it->second;
  for (auto p = placement.begin(); p != placement.end(); ++p) {
    if (p->first == replica) {
      placement.erase(p);
      break;
    }
  }
  for (auto& h : hosts_) {
    h->registry().ForgetReplica(volume, replica);
    h->ForgetRemoteReplica(volume, replica);
  }
  return OkStatus();
}

Status Cluster::MoveReplica(const repl::VolumeId& volume, FicusHost* from, FicusHost* to) {
  FICUS_RETURN_IF_ERROR(AddReplica(volume, to).status());
  FICUS_RETURN_IF_ERROR(ReconcileUntilQuiescent().status());
  return RemoveReplica(volume, from);
}

Status Cluster::RunFor(SimTime duration, SimTime propagation_period,
                       SimTime reconcile_period, SimTime heartbeat_period) {
  SimTime end = clock_.Now() + duration;
  SimTime next_propagation =
      propagation_period == 0 ? end + 1 : clock_.Now() + propagation_period;
  SimTime next_reconcile = reconcile_period == 0 ? end + 1 : clock_.Now() + reconcile_period;
  SimTime next_heartbeat = heartbeat_period == 0 ? end + 1 : clock_.Now() + heartbeat_period;
  while (clock_.Now() < end) {
    SimTime next = std::min({end, next_propagation, next_reconcile, next_heartbeat});
    clock_.AdvanceTo(next);
    // Detector verdicts precede the daemon pumps at each wake: a pump
    // should see the freshest membership view the schedule allows.
    FICUS_RETURN_IF_ERROR(PollHeartbeatsEverywhere());
    if (clock_.Now() >= next_heartbeat) {
      next_heartbeat += heartbeat_period;
    }
    if (clock_.Now() >= next_propagation) {
      FICUS_RETURN_IF_ERROR(RunPropagationEverywhere());
      next_propagation += propagation_period;
    }
    if (clock_.Now() >= next_reconcile) {
      for (auto& host : hosts_) {
        FICUS_RETURN_IF_ERROR(host->RunReconciliation());
      }
      next_reconcile += reconcile_period;
    }
  }
  return OkStatus();
}

Status Cluster::PollHeartbeatsEverywhere() {
  for (auto& host : hosts_) {
    FICUS_RETURN_IF_ERROR(host->PollHeartbeats());
  }
  return OkStatus();
}

Status Cluster::RunPropagationEverywhere() {
  // Reordered notifications land before the daemons look at their caches —
  // late, not lost.
  network_.FlushDeferredDatagrams();
  for (auto& host : hosts_) {
    FICUS_RETURN_IF_ERROR(host->RunPropagation());
  }
  return OkStatus();
}

StatusOr<int> Cluster::ReconcileUntilQuiescent(int max_rounds) {
  // A round is quiescent when no reconciler pulled a file, applied an
  // entry, or repaired a conflict anywhere. Entry applications are counted
  // by the physical layers, file pulls by the reconcilers.
  auto snapshot = [this]() {
    uint64_t total = 0;
    for (auto& host : hosts_) {
      for (repl::PhysicalLayer* layer : host->registry().AllLocal()) {
        total += layer->stats().entries_applied + layer->stats().installs;
      }
    }
    return total;
  };
  int round = 0;
  for (; round < max_rounds; ++round) {
    uint64_t before = snapshot();
    for (auto& host : hosts_) {
      FICUS_RETURN_IF_ERROR(host->RunReconciliation());
    }
    if (snapshot() == before) {
      return round + 1;
    }
  }
  return round;
}

void Cluster::Partition(const std::vector<std::vector<FicusHost*>>& groups) {
  std::vector<std::vector<net::HostId>> id_groups;
  id_groups.reserve(groups.size());
  for (const auto& group : groups) {
    std::vector<net::HostId> ids;
    ids.reserve(group.size());
    for (FicusHost* host : group) {
      ids.push_back(host->id());
    }
    id_groups.push_back(std::move(ids));
  }
  network_.Partition(id_groups);
}

}  // namespace ficus::sim
