#include "src/sim/host.h"

#include "src/common/logging.h"

namespace ficus::sim {

// --- ExportVfs: one vnode namespace multiplexing every exported facade ---

class FicusHost::ExportVfs : public vfs::Vfs {
 public:
  explicit ExportVfs(FicusHost* host) : host_(host) {}

  StatusOr<vfs::VnodePtr> Root() override {
    return vfs::VnodePtr(std::make_shared<RootVnode>(host_));
  }

 private:
  class RootVnode : public vfs::Vnode {
   public:
    explicit RootVnode(FicusHost* host) : host_(host) {}

    StatusOr<vfs::VAttr> GetAttr(const vfs::OpContext& = {}) override {
      vfs::VAttr attr;
      attr.type = vfs::VnodeType::kDirectory;
      attr.fileid = 1;
      attr.fsid = 0xE0000000ULL | host_->id();
      return attr;
    }

    StatusOr<vfs::VnodePtr> Lookup(std::string_view name,
                                   const vfs::OpContext&) override {
      // Runs on service-pool threads; the map lock keeps the walk safe
      // against control-plane replica creation.
      std::lock_guard<std::mutex> lock(host_->locals_mu_);
      for (auto& [key, local] : host_->locals_) {
        if (ExportName(key.first, key.second) == name) {
          return local.facade->Root();
        }
      }
      return NotFoundError("no volume replica exported as " + std::string(name));
    }

    StatusOr<std::vector<vfs::DirEntry>> Readdir(const vfs::OpContext&) override {
      std::lock_guard<std::mutex> lock(host_->locals_mu_);
      std::vector<vfs::DirEntry> out;
      for (auto& [key, local] : host_->locals_) {
        out.push_back(vfs::DirEntry{ExportName(key.first, key.second), 0,
                                    vfs::VnodeType::kDirectory});
      }
      return out;
    }

   private:
    FicusHost* host_;
  };

  FicusHost* host_;
};

// --- FicusHost ---

FicusHost::FicusHost(net::Network* network, SimClock* clock, const std::string& name,
                     const HostConfig& config, Runtime* runtime)
    : network_(network),
      clock_(clock),
      name_(name),
      id_(network->AddHost(name)),
      config_(config),
      runtime_(runtime),
      device_(config.disk_blocks),
      cache_(&device_, config.cache_blocks),
      ufs_(&cache_, clock),
      grafts_(clock) {
  Status formatted = ufs_.Format(config.inode_count);
  if (!formatted.ok()) {
    FICUS_LOG(kError, "sim") << "host " << name << ": UFS format failed: "
                             << formatted.ToString();
  }
  export_vfs_ = std::make_unique<ExportVfs>(this);
  server_ = std::make_unique<nfs::NfsServer>(network_, id_, export_vfs_.get());
  if (threaded()) {
    // Fixed nfsd population: concurrent peer RPCs get real interleaving,
    // bounded by the pool width.
    service_pool_ = runtime_->NewExecutor(runtime_->options().nfs_service_threads);
    server_->set_service_pool(service_pool_.get());
  }
  network_->port(id_)->RegisterDatagramChannel(
      kUpdateChannel, [this](net::HostId sender, const net::Payload& payload) {
        HandleUpdateDatagram(sender, payload);
      });
  // Every host answers pings; only hosts with a nonzero interval run a
  // monitor of their own.
  cluster::HeartbeatMonitor::RegisterResponder(network_, id_);
  if (config_.heartbeat.interval != 0) {
    heartbeat_ = std::make_unique<cluster::HeartbeatMonitor>(network_, id_, clock_,
                                                             config_.heartbeat, &metrics_);
  }
}

FicusHost::~FicusHost() {
  // Join propagation workers while the transports/proxies they pull
  // through are still alive; member destruction order alone would tear
  // the proxies down first.
  for (auto& [key, local] : locals_) {
    local.worker.reset();
  }
}

std::string FicusHost::ExportName(const repl::VolumeId& volume, repl::ReplicaId replica) {
  return "vol-" + HexEncode32(volume.allocator) + HexEncode32(volume.volume) + "-" +
         HexEncode32(replica);
}

StatusOr<repl::PhysicalLayer*> FicusHost::CreateVolumeReplica(const repl::VolumeId& volume,
                                                              repl::ReplicaId replica,
                                                              bool first_replica) {
  auto key = std::make_pair(volume, replica);
  {
    std::lock_guard<std::mutex> lock(locals_mu_);
    if (locals_.count(key) != 0) {
      return ExistsError("replica already stored on this host");
    }
  }
  LocalReplica local;
  local.physical = std::make_unique<repl::PhysicalLayer>(&ufs_, clock_, config_.physical);
  std::string container = "vol_" + HexEncode32(volume.allocator) +
                          HexEncode32(volume.volume) + "_r" + std::to_string(replica);
  FICUS_RETURN_IF_ERROR(
      local.physical->CreateVolume(volume, replica, container, first_replica));
  // Facade fsid must be unique per (volume, replica) across the cluster so
  // NFS handle keys never collide.
  uint64_t fsid = (static_cast<uint64_t>(volume.allocator) << 40) ^
                  (static_cast<uint64_t>(volume.volume) << 16) ^ replica ^
                  (static_cast<uint64_t>(id_) << 56);
  local.facade = std::make_unique<repl::PhysicalFacadeVfs>(local.physical.get(), fsid);
  local.propagation = std::make_unique<repl::PropagationDaemon>(
      local.physical.get(), this, &conflict_log_, clock_, config_.propagation);
  local.reconciler = std::make_unique<repl::Reconciler>(
      local.physical.get(), this, &conflict_log_, clock_, config_.reconcile, &metrics_);
  if (threaded()) {
    local.worker = std::make_unique<repl::PropagationWorker>(local.propagation.get());
  }
  repl::PhysicalLayer* raw = local.physical.get();
  {
    std::lock_guard<std::mutex> lock(locals_mu_);
    locals_[key] = std::move(local);
  }
  registry_.RegisterLocal(raw, id_);
  return raw;
}

void FicusHost::LearnReplicaLocation(const repl::VolumeId& volume, repl::ReplicaId replica,
                                     net::HostId host) {
  registry_.RegisterRemote(volume, replica, host);
  if (heartbeat_ != nullptr && host != id_) {
    heartbeat_->Watch(host);
  }
}

StatusOr<repl::LogicalLayer*> FicusHost::MountVolume(const repl::VolumeId& volume,
                                                     bool pinned) {
  if (repl::LogicalLayer* existing = grafts_.Find(volume)) {
    return existing;
  }
  if (registry_.ReplicasOf(volume).empty()) {
    return NotFoundError("host knows no replica of volume " + volume.ToString());
  }
  auto logical =
      std::make_unique<repl::LogicalLayer>(volume, this, this, &conflict_log_, clock_);
  logical->set_graft_resolver(this);
  return grafts_.Insert(volume, std::move(logical), pinned);
}

namespace {
// Recursively unlinks a UFS subtree rooted at `dir`'s entry `name`.
Status RemoveUfsTree(ufs::Ufs* ufs, ufs::InodeNum dir, const std::string& name) {
  FICUS_ASSIGN_OR_RETURN(ufs::InodeNum target, ufs->DirLookup(dir, name));
  FICUS_ASSIGN_OR_RETURN(ufs::Inode inode, ufs->ReadInode(target));
  if (inode.type == ufs::FileType::kDirectory) {
    FICUS_ASSIGN_OR_RETURN(std::vector<ufs::UfsDirEntry> entries, ufs->DirList(target));
    for (const auto& e : entries) {
      FICUS_RETURN_IF_ERROR(RemoveUfsTree(ufs, target, e.name));
    }
  }
  return ufs->Unlink(dir, name);
}
}  // namespace

Status FicusHost::DropVolumeReplica(const repl::VolumeId& volume) {
  // Pull the replica out of the map under the lock but destroy it outside:
  // its worker's final pass may itself need locals_mu_ via the resolver.
  LocalReplica doomed;
  repl::ReplicaId replica = repl::kInvalidReplica;
  {
    std::lock_guard<std::mutex> lock(locals_mu_);
    for (auto it = locals_.begin(); it != locals_.end(); ++it) {
      if (it->first.first != volume) {
        continue;
      }
      replica = it->first.second;
      doomed = std::move(it->second);
      locals_.erase(it);
      break;
    }
  }
  if (replica == repl::kInvalidReplica) {
    return NotFoundError("no local replica of volume " + volume.ToString());
  }
  doomed.worker.reset();
  // Retire every handle the NFS server minted for this export before the
  // facade behind them dies: a peer still holding one gets kStale, and
  // its refresher's re-lookup now misses the export (erased above).
  server_->FlushHandles();
  doomed = LocalReplica{};  // daemons/facade die before the storage goes
  std::string container = "vol_" + HexEncode32(volume.allocator) +
                          HexEncode32(volume.volume) + "_r" + std::to_string(replica);
  FICUS_RETURN_IF_ERROR(RemoveUfsTree(&ufs_, ufs::kRootInode, container));
  registry_.ForgetReplica(volume, replica);
  return OkStatus();
}

void FicusHost::ForgetRemoteReplica(const repl::VolumeId& volume, repl::ReplicaId replica) {
  std::lock_guard<std::mutex> lock(remote_mu_);
  auto it = proxies_.find(std::make_pair(volume, replica));
  if (it == proxies_.end()) {
    return;
  }
  retired_proxies_.push_back(std::move(it->second));
  proxies_.erase(it);
}

void FicusHost::Crash() {
  device_.InjectCrash();
  network_->SetHostUp(id_, false);
}

Status FicusHost::Reboot() {
  device_.ClearCrash();
  cache_.Invalidate();
  network_->SetHostUp(id_, true);
  // Re-attach every local volume replica from the surviving disk image;
  // the shadow-recovery sweep runs inside Attach(). The physical layer and
  // everything holding it (facade, daemons, registry entry) are rebuilt —
  // exactly what a kernel reboot does. Callers reach replicas through the
  // resolver, which looks the fresh objects up per call.
  {
    // Retire the old workers before their daemons go; joining must happen
    // without locals_mu_ held (a worker's in-flight pass may need it).
    std::vector<std::unique_ptr<repl::PropagationWorker>> retired;
    {
      std::lock_guard<std::mutex> lock(locals_mu_);
      for (auto& [key, local] : locals_) {
        retired.push_back(std::move(local.worker));
      }
    }
    retired.clear();
  }
  std::lock_guard<std::mutex> lock(locals_mu_);
  for (auto& [key, local] : locals_) {
    std::string container = "vol_" + HexEncode32(key.first.allocator) +
                            HexEncode32(key.first.volume) + "_r" + std::to_string(key.second);
    auto fresh = std::make_unique<repl::PhysicalLayer>(&ufs_, clock_, config_.physical);
    FICUS_RETURN_IF_ERROR(fresh->Attach(container));
    local.physical = std::move(fresh);
    uint64_t fsid = (static_cast<uint64_t>(key.first.allocator) << 40) ^
                    (static_cast<uint64_t>(key.first.volume) << 16) ^ key.second ^
                    (static_cast<uint64_t>(id_) << 56);
    local.facade = std::make_unique<repl::PhysicalFacadeVfs>(local.physical.get(), fsid);
    local.propagation = std::make_unique<repl::PropagationDaemon>(
        local.physical.get(), this, &conflict_log_, clock_, config_.propagation);
    local.reconciler = std::make_unique<repl::Reconciler>(
        local.physical.get(), this, &conflict_log_, clock_, config_.reconcile, &metrics_);
    if (threaded()) {
      local.worker = std::make_unique<repl::PropagationWorker>(local.propagation.get());
    }
    registry_.RegisterLocal(local.physical.get(), id_);
  }
  // A rebooted server answers with a fresh handle table (clients see
  // ESTALE and re-acquire, as real NFS clients do).
  server_->FlushHandles();
  return OkStatus();
}

Status FicusHost::RunPropagation() {
  if (threaded()) {
    // Kick every worker, then wait for all of them: the replicas' pull
    // passes overlap on their own threads.
    std::vector<repl::PropagationWorker*> workers;
    {
      std::lock_guard<std::mutex> lock(locals_mu_);
      for (auto& [key, local] : locals_) {
        if (local.worker != nullptr) {
          workers.push_back(local.worker.get());
        }
      }
    }
    for (repl::PropagationWorker* worker : workers) {
      worker->Kick();
    }
    for (repl::PropagationWorker* worker : workers) {
      worker->Drain();
    }
    for (repl::PropagationWorker* worker : workers) {
      FICUS_RETURN_IF_ERROR(worker->last_error());
    }
    return OkStatus();
  }
  // Deterministic mode: run the daemons serially on this thread. The
  // pointer snapshot keeps the contract identical to the threaded path
  // (no map lock held across the pull RPCs).
  std::vector<repl::PropagationDaemon*> daemons;
  {
    std::lock_guard<std::mutex> lock(locals_mu_);
    for (auto& [key, local] : locals_) {
      daemons.push_back(local.propagation.get());
    }
  }
  for (repl::PropagationDaemon* daemon : daemons) {
    FICUS_RETURN_IF_ERROR(daemon->RunOnce());
  }
  return OkStatus();
}

Status FicusHost::RunReconciliation() {
  // Reconciliation stays serial in both runtimes — its pairwise protocol
  // is the determinism anchor the differential tests compare against.
  std::vector<repl::Reconciler*> reconcilers;
  {
    std::lock_guard<std::mutex> lock(locals_mu_);
    for (auto& [key, local] : locals_) {
      reconcilers.push_back(local.reconciler.get());
    }
  }
  for (repl::Reconciler* reconciler : reconcilers) {
    FICUS_RETURN_IF_ERROR(reconciler->ReconcileWithAllReplicas());
  }
  return OkStatus();
}

Status FicusHost::PollHeartbeats() {
  if (heartbeat_ == nullptr || !network_->HostUp(id_)) {
    return OkStatus();  // no monitor, or this host is the crashed one
  }
  std::vector<cluster::PeerTransition> transitions = heartbeat_->Poll();
  Status first_error = OkStatus();
  for (const cluster::PeerTransition& t : transitions) {
    if (t.to == cluster::PeerState::kAlive && t.from == cluster::PeerState::kDead) {
      // The peer served writes while we suppressed all traffic towards
      // it; pull that history now instead of waiting for the next
      // periodic reconcile pass.
      Status status = ResyncWithPeer(t.peer);
      if (!status.ok() && first_error.ok()) {
        first_error = status;
      }
    }
  }
  return first_error;
}

Status FicusHost::ResyncWithPeer(net::HostId peer) {
  metrics_.counter("cluster.hb.resyncs")->Increment();
  // Snapshot the pairings under the map lock, reconcile unlocked — the
  // same contract as the daemon pumps.
  std::vector<std::pair<repl::Reconciler*, repl::ReplicaId>> pairings;
  {
    std::lock_guard<std::mutex> lock(locals_mu_);
    for (auto& [key, local] : locals_) {
      for (repl::ReplicaId replica : registry_.ReplicasOf(key.first)) {
        if (replica == key.second) {
          continue;
        }
        auto host = registry_.HostOf(key.first, replica);
        if (host.has_value() && *host == peer) {
          pairings.emplace_back(local.reconciler.get(), replica);
        }
      }
    }
  }
  Status first_error = OkStatus();
  for (const auto& [reconciler, replica] : pairings) {
    Status status = reconciler->ReconcileSubtree(repl::kRootFileId, replica);
    if (!status.ok() && status.code() != ErrorCode::kUnreachable &&
        status.code() != ErrorCode::kTimedOut && first_error.ok()) {
      first_error = status;  // it may simply have died again mid-resync
    }
  }
  return first_error;
}

int FicusHost::PruneGrafts(SimTime horizon) { return grafts_.Prune(horizon); }

std::vector<repl::ReplicaId> FicusHost::ReplicasOf(const repl::VolumeId& volume) {
  return registry_.ReplicasOf(volume);
}

repl::ReplicaId FicusHost::PreferredReplica(const repl::VolumeId& volume) {
  repl::PhysicalLayer* local = registry_.LocalReplica(volume);
  return local != nullptr ? local->replica_id() : repl::kInvalidReplica;
}

repl::PeerHealth FicusHost::HealthOf(const repl::VolumeId& volume,
                                     repl::ReplicaId replica) {
  if (heartbeat_ == nullptr) {
    return repl::PeerHealth::kAlive;  // no detector, no opinion
  }
  auto host = registry_.HostOf(volume, replica);
  if (!host.has_value() || *host == id_) {
    return repl::PeerHealth::kAlive;
  }
  switch (heartbeat_->StateOf(*host)) {
    case cluster::PeerState::kAlive:
      return repl::PeerHealth::kAlive;
    case cluster::PeerState::kSuspect:
      return repl::PeerHealth::kSuspect;
    case cluster::PeerState::kDead:
      return repl::PeerHealth::kDead;
  }
  return repl::PeerHealth::kAlive;
}

uint64_t FicusHost::ReadCost(const repl::VolumeId& volume, repl::ReplicaId replica) {
  // Local replica is free; remote peers rank by measured heartbeat RTT
  // when a monitor runs. kRemoteBaseline keeps unmeasured (or
  // monitor-less) peers costlier than local and mutually equal, which
  // reproduces the legacy prefer-local tie-break exactly.
  constexpr uint64_t kRemoteBaseline = 1000000;
  auto host = registry_.HostOf(volume, replica);
  if (!host.has_value()) {
    return kRemoteBaseline;
  }
  if (*host == id_) {
    return 0;
  }
  if (heartbeat_ == nullptr) {
    return kRemoteBaseline;
  }
  SimTime rtt = heartbeat_->RttOf(*host);
  return rtt == 0 ? kRemoteBaseline : static_cast<uint64_t>(rtt);
}

StatusOr<repl::PhysicalApi*> FicusHost::Access(const repl::VolumeId& volume,
                                               repl::ReplicaId replica) {
  auto key = std::make_pair(volume, replica);
  {
    std::lock_guard<std::mutex> lock(locals_mu_);
    auto local = locals_.find(key);
    if (local != locals_.end()) {
      return static_cast<repl::PhysicalApi*>(local->second.physical.get());
    }
  }
  {
    std::lock_guard<std::mutex> lock(remote_mu_);
    auto proxy = proxies_.find(key);
    if (proxy != proxies_.end()) {
      return static_cast<repl::PhysicalApi*>(proxy->second.get());
    }
  }
  auto host = registry_.HostOf(volume, replica);
  if (!host.has_value()) {
    return NotFoundError("no known location for replica " + std::to_string(replica) +
                         " of volume " + volume.ToString());
  }
  return ConnectRemote(volume, replica, *host);
}

StatusOr<repl::PhysicalApi*> FicusHost::ConnectRemote(const repl::VolumeId& volume,
                                                      repl::ReplicaId replica,
                                                      net::HostId host) {
  // One NFS client (transport) per peer host, shared by all proxies. The
  // map lock covers only the lookups/inserts; the connection handshake
  // RPCs run unlocked (the client object is itself thread-safe).
  nfs::NfsClient* client_ptr = nullptr;
  {
    std::lock_guard<std::mutex> lock(remote_mu_);
    auto transport = transports_.find(host);
    if (transport == transports_.end()) {
      nfs::ClientConfig client_config;
      client_config.attr_cache_ttl = config_.transport_attr_ttl;
      client_config.dnlc_ttl = config_.transport_dnlc_ttl;
      client_config.retry = config_.transport_retry;
      auto client = std::make_unique<nfs::NfsClient>(network_, id_, host, clock_,
                                                     client_config, nfs::kNfsService,
                                                     &metrics_);
      transport = transports_.emplace(host, std::move(client)).first;
    }
    client_ptr = transport->second.get();
  }
  FICUS_ASSIGN_OR_RETURN(vfs::VnodePtr export_root, client_ptr->Root());
  auto facade_root = export_root->Lookup(ExportName(volume, replica), {});
  if (!facade_root.ok() && facade_root.status().code() == ErrorCode::kStale) {
    // The transport's cached export root predates a server handle flush
    // (replica drop, server restart): re-acquire it once, exactly as the
    // connected proxies' refresher does on their next call.
    client_ptr->ForgetRoot();
    client_ptr->InvalidateCaches();
    FICUS_ASSIGN_OR_RETURN(export_root, client_ptr->Root());
    facade_root = export_root->Lookup(ExportName(volume, replica), {});
  }
  FICUS_RETURN_IF_ERROR(facade_root.status());
  auto refresher = [client_ptr, volume, replica]() -> StatusOr<vfs::VnodePtr> {
    client_ptr->ForgetRoot();
    client_ptr->InvalidateCaches();
    FICUS_ASSIGN_OR_RETURN(vfs::VnodePtr root, client_ptr->Root());
    return root->Lookup(ExportName(volume, replica), {});
  };
  auto proxy = std::make_unique<repl::RemotePhysical>(std::move(facade_root).value(),
                                                      std::move(refresher));
  FICUS_RETURN_IF_ERROR(proxy->Connect());
  std::lock_guard<std::mutex> lock(remote_mu_);
  // A racing connector may have beaten us here; keep the first entry so
  // handed-out pointers stay valid.
  auto [it, inserted] =
      proxies_.emplace(std::make_pair(volume, replica), std::move(proxy));
  return static_cast<repl::PhysicalApi*>(it->second.get());
}

void FicusHost::NotifyUpdate(const repl::GlobalFileId& id, const repl::VersionVector& vv,
                             repl::ReplicaId source) {
  // Destinations: every host known to store a replica of this volume.
  std::vector<net::HostId> destinations;
  for (repl::ReplicaId replica : registry_.ReplicasOf(id.volume)) {
    auto host = registry_.HostOf(id.volume, replica);
    if (host.has_value()) {
      destinations.push_back(*host);
    }
  }
  net::Payload payload;
  ByteWriter w(payload);
  repl::PutVolumeId(w, id.volume);
  repl::PutFileId(w, id.file);
  vv.Serialize(w);
  w.PutU32(source);
  network_->Multicast(id_, destinations, kUpdateChannel, payload);
}

void FicusHost::HandleUpdateDatagram(net::HostId, const net::Payload& payload) {
  ByteReader r(payload);
  repl::GlobalFileId id;
  if (!repl::GetVolumeId(r, id.volume).ok() || !repl::GetFileId(r, id.file).ok()) {
    return;  // malformed datagrams are dropped, like any datagram
  }
  auto vv = repl::VersionVector::Deserialize(r);
  auto source = r.GetU32();
  if (!vv.ok() || !source.ok()) {
    return;
  }
  const bool kick = threaded() && runtime_->options().kick_propagation_on_notify;
  std::lock_guard<std::mutex> lock(locals_mu_);
  for (auto& [key, local] : locals_) {
    if (key.first == id.volume && key.second != source.value()) {
      local.physical->NoteNewVersion(id, vv.value(), source.value());
      if (kick && local.worker != nullptr) {
        // Eager mode: a notification wakes the replica's worker instead of
        // waiting for the next scheduled pump.
        local.worker->Kick();
      }
    }
  }
}

StatusOr<vfs::VnodePtr> FicusHost::ResolveGraft(const repl::GlobalFileId& graft_point) {
  // Already grafted? Use it (graft hit).
  // Otherwise read the graft point's records through any reachable replica
  // of the *parent* volume, learn the child volume's replica locations,
  // and graft (autograft, section 4.4).
  repl::PhysicalApi* parent_phys = nullptr;
  for (repl::ReplicaId replica : registry_.ReplicasOf(graft_point.volume)) {
    auto access = Access(graft_point.volume, replica);
    if (access.ok()) {
      parent_phys = *access;
      // Prefer a replica that actually stores the graft point.
      if (parent_phys->GetAttributes(graft_point.file).ok()) {
        break;
      }
      parent_phys = nullptr;
    }
  }
  if (parent_phys == nullptr) {
    return UnreachableError("no replica of the grafted-on volume is available");
  }
  FICUS_ASSIGN_OR_RETURN(vol::GraftPointInfo info,
                         vol::ReadGraftPoint(parent_phys, graft_point.file));
  if (repl::LogicalLayer* grafted = grafts_.Find(info.volume)) {
    return grafted->Root();
  }
  for (const auto& [replica, host] : info.replicas) {
    registry_.RegisterRemote(info.volume, replica, host);
  }
  FICUS_ASSIGN_OR_RETURN(repl::LogicalLayer * logical,
                         MountVolume(info.volume, /*pinned=*/false));
  return logical->Root();
}

std::optional<repl::PropagationStats> FicusHost::propagation_stats(
    const repl::VolumeId& volume) const {
  std::lock_guard<std::mutex> lock(locals_mu_);
  for (const auto& [key, local] : locals_) {
    if (key.first == volume) {
      return local.propagation->stats();
    }
  }
  return std::nullopt;
}

const repl::ReconcileStats* FicusHost::reconcile_stats(const repl::VolumeId& volume) const {
  std::lock_guard<std::mutex> lock(locals_mu_);
  for (const auto& [key, local] : locals_) {
    if (key.first == volume) {
      return &local.reconciler->stats();
    }
  }
  return nullptr;
}

}  // namespace ficus::sim
