// CLI driver for the model checker. CI runs it as the sim-check tier:
//
//   sim_checker --schedules 500 --seed <run-id>
//
// The base seed is always logged so any CI failure reproduces locally
// byte-for-byte; on violation the offending schedule is shrunk to a
// minimal repro and (with --trace-out) written as a replayable JSON trace.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/common/rng.h"
#include "src/sim/checker/checker.h"
#include "src/sim/checker/schedule.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--schedules N] [--seed S] [--hosts N] [--files N] [--dirs N]\n"
               "          [--ops N] [--fault-plan NAME] [--heartbeat]\n"
               "          [--inject-lost-update] [--inject-stale-digest]\n"
               "          [--inject-false-death] [--full-walk-reconcile]\n"
               "          [--no-shrink] [--trace-out FILE] [--replay FILE]\n"
               "          [--canonicalize FILE] [--runtime deterministic|threaded]\n"
               "          [--differential]\n",
               argv0);
}

bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  using ficus::sim::checker::CheckerConfig;
  using ficus::sim::checker::ModelChecker;
  using ficus::sim::checker::RunResult;
  using ficus::sim::checker::Schedule;

  CheckerConfig config;
  uint64_t base_seed = 1;
  uint64_t schedules = 500;
  bool shrink = true;
  bool differential = false;
  ficus::RuntimeOptions runtime_options;
  std::string trace_out;
  std::string replay_file;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](uint64_t* out) {
      if (i + 1 >= argc || !ParseUint(argv[++i], out)) {
        std::fprintf(stderr, "bad value for %s\n", arg.c_str());
        Usage(argv[0]);
        std::exit(2);
      }
    };
    uint64_t value = 0;
    if (arg == "--schedules") {
      next_value(&schedules);
    } else if (arg == "--seed") {
      next_value(&base_seed);
    } else if (arg == "--hosts") {
      next_value(&value);
      config.hosts = static_cast<uint32_t>(value);
    } else if (arg == "--files") {
      next_value(&value);
      config.files = static_cast<uint32_t>(value);
    } else if (arg == "--dirs") {
      next_value(&value);
      config.dirs = static_cast<uint32_t>(value);
    } else if (arg == "--ops") {
      next_value(&value);
      config.ops = static_cast<uint32_t>(value);
    } else if (arg == "--fault-plan") {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        return 2;
      }
      config.fault_plan = argv[++i];
    } else if (arg == "--heartbeat") {
      config.heartbeat = true;
    } else if (arg == "--inject-lost-update") {
      config.inject_lost_update = true;
    } else if (arg == "--inject-stale-digest") {
      config.inject_stale_digest = true;
    } else if (arg == "--inject-false-death") {
      // The membership self-test: monitors on, one verdict poisoned at
      // every checkpoint; the run must end with a violation (exit 1).
      config.heartbeat = true;
      config.inject_false_death = true;
    } else if (arg == "--full-walk-reconcile") {
      config.reconcile_digest_guided = false;
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--runtime") {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        return 2;
      }
      std::string mode = argv[++i];
      if (mode == "threaded") {
        runtime_options.mode = ficus::RuntimeMode::kThreaded;
      } else if (mode == "deterministic") {
        runtime_options.mode = ficus::RuntimeMode::kDeterministic;
      } else {
        std::fprintf(stderr, "unknown runtime %s\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--differential") {
      differential = true;
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        return 2;
      }
      trace_out = argv[++i];
    } else if (arg == "--replay") {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        return 2;
      }
      replay_file = argv[++i];
    } else if (arg == "--canonicalize") {
      // Rewrite a (possibly hand-edited) trace in the canonical byte form
      // the replay regression test insists on.
      if (i + 1 >= argc) {
        Usage(argv[0]);
        return 2;
      }
      std::string file = argv[++i];
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot read trace %s\n", file.c_str());
        return 2;
      }
      std::string json((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
      auto schedule = ficus::sim::checker::FromJson(json);
      if (!schedule.ok()) {
        std::fprintf(stderr, "trace parse failed: %s\n",
                     schedule.status().ToString().c_str());
        return 2;
      }
      std::ofstream out(file);
      out << ficus::sim::checker::ToJson(schedule.value());
      std::printf("canonicalized %s\n", file.c_str());
      return 0;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  ModelChecker checker{runtime_options};

  if (differential) {
    // Each schedule runs under BOTH runtimes; pass = both oracle-clean and
    // identical converged state.
    std::printf("sim_checker differential: %llu schedules, base seed %llu\n",
                static_cast<unsigned long long>(schedules),
                static_cast<unsigned long long>(base_seed));
    int failures = 0;
    ficus::Rng seeds(base_seed);
    for (uint64_t n = 0; n < schedules; ++n) {
      uint64_t seed = seeds.Next();
      Schedule schedule = ficus::sim::checker::GenerateSchedule(config, seed);
      auto diff = ficus::sim::checker::RunDifferential(schedule);
      bool ok = !diff.deterministic.failed() && !diff.threaded.failed() &&
                diff.deterministic.harness_errors.empty() &&
                diff.threaded.harness_errors.empty() && diff.digests_match;
      if (!ok) {
        ++failures;
        std::printf("DIFFERENTIAL FAILURE at seed %llu%s\n deterministic: %s\n threaded: %s\n",
                    static_cast<unsigned long long>(seed),
                    diff.digests_match ? "" : " (converged state diverged)",
                    diff.deterministic.Summary().c_str(), diff.threaded.Summary().c_str());
      }
      if ((n + 1) % 10 == 0) {
        std::printf("  ... %llu/%llu differential schedules done\n",
                    static_cast<unsigned long long>(n + 1),
                    static_cast<unsigned long long>(schedules));
      }
    }
    std::printf("differential: %llu schedules, %d failure(s)\n",
                static_cast<unsigned long long>(schedules), failures);
    return failures == 0 ? 0 : 1;
  }

  if (!replay_file.empty()) {
    std::ifstream in(replay_file);
    if (!in) {
      std::fprintf(stderr, "cannot read trace %s\n", replay_file.c_str());
      return 2;
    }
    std::string json((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    auto schedule = ficus::sim::checker::FromJson(json);
    if (!schedule.ok()) {
      std::fprintf(stderr, "trace parse failed: %s\n",
                   schedule.status().ToString().c_str());
      return 2;
    }
    RunResult result = checker.Run(schedule.value());
    std::printf("replayed %s (%zu ops): %s\n", replay_file.c_str(),
                schedule->ops.size(), result.Summary().c_str());
    bool as_expected = result.failed() == schedule->expect_violation;
    if (!as_expected) {
      std::printf("REPLAY MISMATCH: trace expects %s\n",
                  schedule->expect_violation ? "a violation" : "a clean run");
    }
    return as_expected && result.harness_errors.empty() ? 0 : 1;
  }

  std::printf("sim_checker: %llu schedules, base seed %llu, %u hosts, %u files, %u ops%s%s\n",
              static_cast<unsigned long long>(schedules),
              static_cast<unsigned long long>(base_seed), config.hosts, config.files,
              config.ops, config.fault_plan.empty() ? "" : ", fault plan ",
              config.fault_plan.c_str());

  int failures = 0;
  uint64_t explored = 0;
  ModelChecker::ExploreResult result = checker.Explore(
      config, base_seed, static_cast<int>(schedules),
      [&](uint64_t seed, const RunResult& run) {
        ++explored;
        if (explored % 100 == 0) {
          std::printf("  ... %llu schedules explored\n",
                      static_cast<unsigned long long>(explored));
        }
        if (!run.harness_errors.empty()) {
          std::printf("seed %llu harness errors:\n%s\n",
                      static_cast<unsigned long long>(seed), run.Summary().c_str());
        }
        if (!run.failed()) return;
        ++failures;
        std::printf("VIOLATION at seed %llu:\n%s\n", static_cast<unsigned long long>(seed),
                    run.Summary().c_str());
        Schedule schedule = ficus::sim::checker::GenerateSchedule(config, seed);
        if (shrink) {
          Schedule minimal = checker.Shrink(schedule);
          minimal.expect_violation = true;
          std::printf("shrunk to %zu ops (from %zu):\n%s",
                      minimal.ops.size(), schedule.ops.size(),
                      ficus::sim::checker::ToJson(minimal).c_str());
          if (!trace_out.empty()) {
            std::ofstream out(trace_out);
            out << ficus::sim::checker::ToJson(minimal);
            std::printf("trace written to %s\n", trace_out.c_str());
          }
        }
      });

  std::printf("explored %d schedules (%llu ops total), %d violation(s)\n", result.schedules,
              static_cast<unsigned long long>(result.total_ops), failures);
  return failures == 0 ? 0 : 1;
}
