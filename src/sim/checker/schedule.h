// Schedules for the deterministic cluster model checker: a schedule is a
// finite program of cluster events — syscall workload ops, crashes and
// reboots, partitions and heals, daemon ticks, clock advances — generated
// from a single uint64 seed with zero wall-clock dependence, so the same
// seed always yields the same byte-for-byte schedule and the same run.
//
// Schedules serialize to a small JSON trace format so a shrunk failing
// schedule can be committed under tests/sim/traces/ and replayed forever
// as a regression test (see docs/TESTING.md).
#ifndef FICUS_SRC_SIM_CHECKER_SCHEDULE_H_
#define FICUS_SRC_SIM_CHECKER_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ficus::sim::checker {

enum class OpKind : uint8_t {
  kWrite,       // overwrite file `file` at host `host` with a unique payload
  kRemove,      // remove file `file` at host `host`
  kRename,      // rename file `file` to the name of file-slot `arg`
  kLookup,      // resolve slot `file`'s path at host `host` (exercises the name cache)
  kReaddir,     // readdirplus slot `file`'s parent directory at host `host`
  kCrash,       // hard-crash host `host` (writes dropped, off the network)
  kReboot,      // reboot host `host` (shadow recovery runs)
  kPartition,   // split the network: hosts with bit set in `arg` vs the rest
  kHeal,        // heal all partitions
  kPropagate,   // one update-propagation pass on every live host
  kReconcile,   // one reconciliation pass on host `host`
  kAdvance,     // advance the simulated clock by `arg` milliseconds
  kCheckpoint,  // heal-and-quiesce mid-run, then run the full oracle check
  // Replica-set churn (section 3.1: replicas may be added or dropped
  // whenever one is available). Drops go through the cluster's safe-retire
  // gate, so under partitions the op is refused (and counted skipped)
  // rather than discarding the only copy of partition-era updates. Host 0
  // never drops its replica — it anchors the checker's ground-truth reads.
  kAddReplica,   // re-create a replica of the volume on host `host`
  kDropReplica,  // retire host `host`'s replica of the volume
};

const char* OpKindName(OpKind kind);
StatusOr<OpKind> OpKindFromName(std::string_view name);

struct Op {
  OpKind kind = OpKind::kWrite;
  uint32_t host = 0;  // acting host for kWrite/kRemove/kRename/kCrash/kReboot/kReconcile
  uint32_t file = 0;  // file-universe slot for kWrite/kRemove/kRename
  uint64_t arg = 0;   // kRename: target slot; kPartition: host bitmask; kAdvance: ms

  bool operator==(const Op&) const = default;
};

struct CheckerConfig {
  uint32_t hosts = 3;
  uint32_t files = 8;  // file-universe slots, spread over the root + dirs
  uint32_t dirs = 2;   // pre-seeded directories d0..d<dirs-1>
  uint32_t ops = 48;   // schedule length
  // Named canned net::FaultPlan installed for the whole run ("", "Lossy",
  // "HighLatency", "Flapping"). Faults are cleared at every checkpoint.
  std::string fault_plan;
  // Testing the tester: sabotage every successful overwrite by rolling the
  // replica's version vector back to its pre-write value — a classic lost
  // update the oracle must catch (guarded test, never on by default).
  bool inject_lost_update = false;
  // Testing the tester, name-cache edition: at every checkpoint, plant one
  // deliberately wrong binding in host 0's name cache, stamped with the
  // converged directory vector so it cannot die by vector mismatch. The
  // post-heal lookup sweep must flag it as a stale hit (guarded test,
  // never on by default).
  bool inject_stale_name_cache = false;
  // Testing the tester, digest edition: at every checkpoint, corrupt the
  // cached Merkle subtree digest of host 0's volume root. The digest
  // oracle (cached vs recomputed-from-contents) must flag it (guarded
  // test, never on by default).
  bool inject_stale_digest = false;
  // Runs every host with an active HeartbeatMonitor (membership on): hosts
  // watch their peers, daemons skip dead peers, and checkpoints run the
  // membership oracle (no live reachable peer may still be marked dead
  // after heal-and-quiesce plus recovery polls).
  bool heartbeat = false;
  // Testing the tester, membership edition: at every checkpoint force host
  // 0's monitor to mark host 1 dead after the recovery polls. The
  // membership oracle must flag the false death (guarded test, never on by
  // default). Implies `heartbeat`.
  bool inject_false_death = false;
  // Subtree reconciliation mode for every host in the run. The recon
  // differential tier runs each schedule both ways and asserts identical
  // converged state with strictly fewer RPCs here when true.
  bool reconcile_digest_guided = true;

  bool operator==(const CheckerConfig&) const = default;
};

struct Schedule {
  uint64_t seed = 0;
  CheckerConfig config;
  std::vector<Op> ops;
  // Replay expectation for committed traces: a trace of a (deliberately
  // injected) bug records true, and the replay test asserts the violation
  // still reproduces; clean edge-case traces record false.
  bool expect_violation = false;
};

// Path of file-universe slot `index` relative to the volume root: slots
// cycle through the root and the pre-seeded directories so renames and
// removes cross directory boundaries.
std::string SlotPath(const CheckerConfig& config, uint32_t index);

// Deterministically generates a plausible schedule from `seed`: weighted
// op mix, crashes only while another host survives, reboots only of
// crashed hosts, partitions always leave two non-empty groups.
Schedule GenerateSchedule(const CheckerConfig& config, uint64_t seed);

// JSON trace round-trip. ToJson is deterministic (stable key order, one
// op per line) so byte-for-byte comparison of two generations is valid.
std::string ToJson(const Schedule& schedule);
StatusOr<Schedule> FromJson(std::string_view json);

}  // namespace ficus::sim::checker

#endif  // FICUS_SRC_SIM_CHECKER_SCHEDULE_H_
