// The one-copy oracle of the model checker: an observation-based abstract
// model of what the cluster should converge to.
//
// The oracle never models the network or the reconciliation protocol —
// doing so would just re-implement the code under test and inherit its
// bugs. Instead it records *ground truth observations* at op time, taken
// from the acting host's local physical layer (every checker host stores
// a replica, so the logical layer always serves ops locally):
//   * after every successful write: the file's new version vector and the
//     payload written (plus the pre-op vector for monotonicity checks);
//   * after every namespace op: the raw entry set (tombstones included)
//     of each directory the op touched.
// Because every version vector in the system is minted by an op the
// checker issued, the observed set covers all versions that can exist.
//
// After heal-and-quiesce, CheckFinal compares the converged cluster
// against the observations:
//   1. all replicas agree: raw entry sets and directory version vectors
//      for every alive-reachable directory; version vector, type, and
//      content for every alive non-conflicted file; conflict flags set
//      everywhere for alive conflicted files;
//   2. no lost update: each replica's final (vv, content) for an alive
//      file matches some concurrent-maximal observed write, and the
//      conflict flag is set iff more than one maximal write exists;
//   3. no orphaned entries: an entry whose maximal observations are all
//      alive must survive;
//   4. no resurrection: an entry whose maximal observations are all
//      informed deletes (tombstone knew every observed content version)
//      must stay dead.
#ifndef FICUS_SRC_SIM_CHECKER_ORACLE_H_
#define FICUS_SRC_SIM_CHECKER_ORACLE_H_

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/repl/logical.h"
#include "src/repl/physical.h"
#include "src/repl/types.h"

namespace ficus::sim::checker {

// One replica of the converged cluster, as CheckFinal sees it.
struct ReplicaView {
  std::string host_name;
  repl::PhysicalLayer* physical = nullptr;
  repl::LogicalLayer* logical = nullptr;
};

class OneCopyOracle {
 public:
  // Records a successful write (or create+write) of `payload` into `file`
  // at some host's local replica. `before_vv` is the content vector that
  // replica held before the op (empty when the op created the file).
  // Immediate checks: the new vector strictly dominates the old, and no
  // two distinct payloads ever mint the same vector.
  void ObserveWrite(const repl::FileId& file, const repl::VersionVector& vv,
                    const repl::VersionVector& before_vv, const std::string& payload,
                    int op_index);

  // Records the raw entry set of directory `dir` as seen at the acting
  // host's local replica right after a namespace op.
  void ObserveDirectory(const repl::FileId& dir,
                        const std::vector<repl::FicusDirEntry>& entries);

  // Violations found at observation time (monotonicity, duplicate mints).
  const std::vector<std::string>& violations() const { return violations_; }

  // Runs the full post-quiescence check; returns all violations found
  // (including the observation-time ones).
  std::vector<std::string> CheckFinal(const std::vector<ReplicaView>& replicas);

 private:
  struct WriteObs {
    repl::VersionVector vv;
    std::string payload;
    int op_index = 0;
  };
  struct EntryObs {
    repl::VersionVector vv;
    bool alive = true;
    repl::VersionVector deleted_file_vv;
  };
  // (directory, raw name, file-id) — the unit the directory merge
  // algorithm reasons about.
  using EntryKey = std::tuple<repl::FileId, std::string, repl::FileId>;

  // Observed write vectors for `file` not strictly dominated by another
  // observed vector.
  std::vector<const WriteObs*> MaximalWrites(const repl::FileId& file) const;

  void AddViolation(std::vector<std::string>& out, const std::string& what);

  std::map<repl::FileId, std::vector<WriteObs>> writes_;
  std::map<EntryKey, std::vector<EntryObs>> entries_;
  std::vector<std::string> violations_;
};

}  // namespace ficus::sim::checker

#endif  // FICUS_SRC_SIM_CHECKER_ORACLE_H_
