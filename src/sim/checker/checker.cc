#include "src/sim/checker/checker.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "src/cluster/heartbeat.h"
#include "src/common/serialize.h"

#include "src/net/fault.h"
#include "src/repl/name_cache.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace ficus::sim::checker {

namespace {

// Index into Runner::parent_ids for the directory holding `slot`.
size_t ParentIndex(const CheckerConfig& config, uint32_t slot) {
  if (config.dirs == 0 || slot % 3 == 0) return 0;  // the volume root
  return 1 + (slot % config.dirs);
}

// Everything one Run() needs, so helpers stay free of long parameter
// lists.
struct Runner {
  const Schedule& schedule;
  Cluster cluster;
  std::vector<FicusHost*> hosts;
  std::vector<repl::LogicalLayer*> logicals;
  // parent_ids[0] = volume root, parent_ids[1 + k] = "d<k>". Resolved once
  // after the pre-seed quiesce; these directories are never removed or
  // renamed, so the binding is stable for the whole run.
  std::vector<repl::FileId> parent_ids;
  repl::VolumeId volume;
  OneCopyOracle oracle;
  std::set<uint32_t> crashed;
  std::set<std::string> violations;  // deduplicated across checkpoints
  RunResult result;

  Runner(const Schedule& s, const RuntimeOptions& runtime_options)
      : schedule(s), cluster(runtime_options) {}

  bool IsCrashed(uint32_t host) const { return crashed.count(host) != 0; }

  // Membership is on when asked for explicitly or implied by the guarded
  // false-death injection (which needs monitors to poison).
  bool membership() const {
    return schedule.config.heartbeat || schedule.config.inject_false_death;
  }

  // Never cached: Reboot() rebuilds the physical layer, so a stored
  // pointer dangles after the first crash/recover cycle. Null when the
  // host's replica was retired by a drop_replica op — every caller must
  // guard (host 0 is exempt from drops, so it always stores one).
  repl::PhysicalLayer* physical(uint32_t host) const {
    return hosts[host]->registry().LocalReplica(volume);
  }

  void HarnessError(const std::string& what) { result.harness_errors.push_back(what); }

  // Observations bypass the simulated network entirely: each host's local
  // physical layer is read directly, so fault plans and partitions cannot
  // distort what the oracle learns. Crashed hosts are excluded — their
  // in-memory layer believes writes that the crashed device dropped.
  void ObserveDirEverywhere(const repl::FileId& dir) {
    for (uint32_t h = 0; h < hosts.size(); ++h) {
      if (IsCrashed(h)) continue;
      repl::PhysicalLayer* layer = physical(h);
      if (layer == nullptr) continue;
      StatusOr<std::vector<repl::FicusDirEntry>> raw = layer->ReadDirectory(dir);
      if (raw.ok()) oracle.ObserveDirectory(dir, raw.value());
    }
  }

  void ObserveParentEverywhere(uint32_t slot) {
    size_t index = ParentIndex(schedule.config, slot);
    if (index < parent_ids.size()) ObserveDirEverywhere(parent_ids[index]);
  }

  // Union ground truth for a slot's leaf name across every live replica's
  // raw parent directory, read directly like the oracle's observations so
  // faults and partitions cannot distort it. A positive lookup result is
  // only defensible if SOME live replica holds the name alive (the cache
  // stamps entries with the directory vector of a live replica, and equal
  // vectors mean equal directory contents); a negative result is only
  // defensible if SOME live replica lacks it.
  struct NameTruth {
    int live_replicas = 0;
    bool alive_somewhere = false;
    bool absent_somewhere = false;
  };
  NameTruth ReadNameTruth(uint32_t slot) {
    NameTruth truth;
    size_t index = ParentIndex(schedule.config, slot);
    if (index >= parent_ids.size()) return truth;
    std::string leaf = "f" + std::to_string(slot);
    for (uint32_t h = 0; h < hosts.size(); ++h) {
      if (IsCrashed(h)) continue;
      repl::PhysicalLayer* layer = physical(h);
      if (layer == nullptr) continue;
      StatusOr<std::vector<repl::FicusDirEntry>> raw =
          layer->ReadDirectory(parent_ids[index]);
      if (!raw.ok()) continue;
      ++truth.live_replicas;
      bool alive_here = false;
      for (const repl::FicusDirEntry& entry : raw.value()) {
        if (entry.alive && entry.name == leaf) alive_here = true;
      }
      truth.alive_somewhere = truth.alive_somewhere || alive_here;
      truth.absent_somewhere = truth.absent_somewhere || !alive_here;
    }
    return truth;
  }

  uint64_t ReconcileWorkTotal() const {
    uint64_t total = 0;
    for (FicusHost* host : hosts) {
      for (repl::PhysicalLayer* layer : host->registry().AllLocal()) {
        total += layer->stats().entries_applied + layer->stats().installs;
      }
    }
    return total;
  }

  // One membership poll on every live host (no-op unless config.heartbeat
  // armed the monitors). Resync errors during the run are chaos, not bugs.
  void PollMembership() {
    if (!membership()) return;
    (void)cluster.PollHeartbeatsEverywhere();
  }

  void PropagationPass() {
    // Detector verdicts precede the pumps, same as the cluster's RunFor.
    PollMembership();
    cluster.network().FlushDeferredDatagrams();
    for (uint32_t h = 0; h < hosts.size(); ++h) {
      if (IsCrashed(h)) continue;
      (void)hosts[h]->RunPropagation();  // fault-induced errors are chaos, not bugs
    }
  }

  // Recursive sweep for ".shadow" files left behind by a crashed commit —
  // Attach() must have cleaned every one of them during reboot.
  void ScanShadowResidue(FicusHost* host, ufs::InodeNum dir, const std::string& prefix) {
    StatusOr<std::vector<ufs::UfsDirEntry>> entries = host->ufs().DirList(dir);
    if (!entries.ok()) {
      HarnessError("shadow scan failed on " + host->name() + " at " + prefix + ": " +
                   entries.status().ToString());
      return;
    }
    for (const ufs::UfsDirEntry& entry : entries.value()) {
      std::string path = prefix + "/" + entry.name;
      if (entry.name.size() > 7 && entry.name.substr(entry.name.size() - 7) == ".shadow") {
        violations.insert("shadow residue after recovery: " + path + " on host " +
                          host->name());
      }
      if (entry.type == ufs::FileType::kDirectory) {
        ScanShadowResidue(host, entry.ino, path);
      }
    }
  }

  // Canonical text of every host's replica state after convergence.
  // Mtimes are deliberately excluded: the threaded runtime spends the same
  // simulated time differently, so stamps differ while the logical state
  // (contents, version vectors, conflict flags, name bindings) must not.
  std::string ConvergedDigest() {
    std::string out;
    for (uint32_t h = 0; h < hosts.size(); ++h) {
      if (IsCrashed(h)) continue;
      repl::PhysicalLayer* layer = physical(h);
      if (layer == nullptr) {
        // Recorded, not skipped: a drop that succeeded in one runtime but
        // was refused in the other must diverge the digests.
        out += "host " + hosts[h]->name() + " (no replica)\n";
        continue;
      }
      out += "host " + hosts[h]->name() + "\n";
      std::vector<repl::FileId> files = layer->StoredFiles();
      std::sort(files.begin(), files.end());
      for (const repl::FileId& file : files) {
        StatusOr<repl::ReplicaAttributes> attrs = layer->GetAttributes(file);
        if (!attrs.ok()) {
          out += "  " + file.ToString() + " attrs: " + attrs.status().ToString() + "\n";
          continue;
        }
        out += "  " + file.ToString() + " type=" +
               std::to_string(static_cast<int>(attrs->type)) +
               " vv=" + attrs->vv.ToString() +
               " conflict=" + (attrs->conflict ? "1" : "0") + "\n";
        if (attrs->type == repl::FicusFileType::kRegular) {
          StatusOr<std::vector<uint8_t>> data = layer->ReadAllData(file);
          if (data.ok()) {
            out += "    data=" + std::string(data->begin(), data->end()) + "\n";
          }
        } else if (attrs->type == repl::FicusFileType::kSymlink) {
          StatusOr<std::string> target = layer->ReadLink(file);
          if (target.ok()) out += "    link=" + target.value() + "\n";
        } else {
          StatusOr<std::vector<repl::FicusDirEntry>> entries = layer->ReadDirectory(file);
          if (entries.ok()) {
            std::sort(entries->begin(), entries->end(),
                      [](const repl::FicusDirEntry& a, const repl::FicusDirEntry& b) {
                        return a.name < b.name;
                      });
            for (const repl::FicusDirEntry& entry : *entries) {
              if (!entry.alive) continue;
              out += "    entry " + entry.name + " -> " + entry.file.ToString() + "\n";
            }
          }
        }
      }
    }
    return out;
  }

  // The deliberate bug the guarded name-cache tests hunt: plant a binding
  // in host 0's cache that contradicts the converged root directory,
  // stamped with the converged directory vector so the vector-mismatch
  // defense cannot kill it — exactly what a missed invalidation looks
  // like. CheckConvergedLookups must flag it.
  void PoisonNameCache() {
    repl::PhysicalLayer* anchor = physical(0);
    if (anchor == nullptr) return;
    StatusOr<repl::ReplicaAttributes> attrs = anchor->GetAttributes(parent_ids[0]);
    StatusOr<std::vector<repl::FicusDirEntry>> raw = anchor->ReadDirectory(parent_ids[0]);
    if (!attrs.ok() || !raw.ok()) return;
    bool alive = false;  // slot 0 always lives at the root
    for (const repl::FicusDirEntry& entry : raw.value()) {
      if (entry.alive && entry.name == "f0") alive = true;
    }
    repl::NameCache* cache = logicals[0]->name_cache();
    if (alive) {
      cache->EnterNegative(parent_ids[0], "f0", attrs->vv);
    } else {
      cache->EnterPositive(parent_ids[0], "f0", attrs->vv, repl::FileId{1, 424242},
                           repl::FicusFileType::kRegular);
    }
  }

  // After heal-and-quiesce every replica holds the identical directory
  // state, so cached name resolution has no excuse: a lookup through any
  // host's logical layer that disagrees with the converged raw directory
  // is a stale name-cache hit that survived the merge-driven
  // invalidations.
  void CheckConvergedLookups(int op_index) {
    const CheckerConfig& config = schedule.config;
    if (config.inject_stale_name_cache) PoisonNameCache();
    repl::PhysicalLayer* anchor = physical(0);
    if (anchor == nullptr) return;
    for (uint32_t slot = 0; slot < config.files; ++slot) {
      size_t parent_index = ParentIndex(config, slot);
      if (parent_index >= parent_ids.size()) continue;
      StatusOr<std::vector<repl::FicusDirEntry>> raw =
          anchor->ReadDirectory(parent_ids[parent_index]);
      if (!raw.ok()) continue;  // the oracle walk already flagged this
      std::string leaf = "f" + std::to_string(slot);
      bool truth_alive = false;
      for (const repl::FicusDirEntry& entry : raw.value()) {
        if (entry.alive && entry.name == leaf) truth_alive = true;
      }
      std::string path = SlotPath(config, slot);
      for (uint32_t h = 0; h < hosts.size(); ++h) {
        StatusOr<vfs::VnodePtr> root = logicals[h]->Root();
        if (!root.ok()) continue;
        StatusOr<vfs::VnodePtr> resolved = vfs::WalkPath(root.value(), path, {});
        if (!resolved.ok() && resolved.status().code() != ErrorCode::kNotFound) continue;
        bool found = resolved.ok();
        if (found != truth_alive) {
          violations.insert(
              "stale name-cache hit after heal (op " + std::to_string(op_index) + "): '" +
              path + "' at " + hosts[h]->name() +
              (found ? " resolves a binding the converged directory does not hold"
                     : " reports absent although the converged directory holds the name"));
        }
      }
    }
  }

  // The deliberate bug the guarded digest tests hunt: corrupt host 0's
  // cached root subtree digest after it has been computed. The digest
  // oracle (cached vs recomputed-from-contents) must flag it.
  void PoisonDigestTree() {
    repl::PhysicalLayer* anchor = physical(0);
    if (anchor == nullptr) return;
    Status status = anchor->CorruptDigestForTest(repl::kRootFileId);
    if (!status.ok()) {
      HarnessError("digest corruption injection failed: " + status.ToString());
    }
  }

  // Digest-agreement oracle, run on every converged checkpoint state:
  //   1. every host's cached Merkle digest tree must agree with a fresh
  //      recomputation from directory contents (a mismatch means an
  //      invalidation hook was missed — exactly the bug class that makes
  //      digest-guided reconciliation silently skip real differences);
  //   2. the digest must be a pure function of replica state: hosts whose
  //      digest-relevant raw state (stored set, types, version vectors,
  //      conflict flags, full directory entry sets including tombstones)
  //      is byte-identical must compute the same root subtree digest.
  //      Hosts are grouped by state first because replicas may legitimately
  //      differ after convergence — an unresolved conflict holds different
  //      bytes per replica, and tombstone garbage collection fires on
  //      per-replica timing — and those differences are exactly what the
  //      digest is supposed to expose to reconciliation.

  // Canonical text of everything the Merkle digest hashes at one host —
  // deliberately excluding mtimes and owners (so is the digest) and file
  // contents (content changes always advance the version vector).
  std::string DigestStateKey(uint32_t h) {
    repl::PhysicalLayer* layer = physical(h);
    std::string out;
    std::vector<repl::FileId> files = layer->StoredFiles();
    std::sort(files.begin(), files.end());
    for (const repl::FileId& file : files) {
      StatusOr<repl::ReplicaAttributes> attrs = layer->GetAttributes(file);
      if (!attrs.ok()) {
        out += file.ToString() + " unreadable\n";
        continue;
      }
      out += file.ToString() + " t=" + std::to_string(static_cast<int>(attrs->type)) +
             " vv=" + attrs->vv.ToString() + " c=" + (attrs->conflict ? "1" : "0") + "\n";
      if (!repl::IsDirectoryLike(attrs->type)) continue;
      StatusOr<std::vector<repl::FicusDirEntry>> entries = layer->ReadDirectory(file);
      if (!entries.ok()) {
        out += "  entries unreadable\n";
        continue;
      }
      std::sort(entries->begin(), entries->end(),
                [](const repl::FicusDirEntry& a, const repl::FicusDirEntry& b) {
                  return std::tie(a.name, a.file, a.alive) < std::tie(b.name, b.file, b.alive);
                });
      for (const repl::FicusDirEntry& entry : *entries) {
        std::vector<uint8_t> bytes;
        ByteWriter w(bytes);
        entry.Serialize(w);
        out += "  entry ";
        out.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
        out += "\n";
      }
    }
    return out;
  }

  void CheckDigestAgreement(int op_index) {
    // state key -> (root digest -> host names)
    std::map<std::string, std::map<uint64_t, std::vector<std::string>>> groups;
    for (uint32_t h = 0; h < hosts.size(); ++h) {
      if (physical(h) == nullptr) continue;  // replica retired by a drop op
      // Populate (or refresh) the cache through the public batched API —
      // the same entry point reconciliation uses.
      StatusOr<std::vector<repl::SubtreeDigest>> rows =
          physical(h)->GetSubtreeDigests({repl::kRootFileId});
      if (!rows.ok() || rows->size() != 1 || !rows->front().status.ok()) {
        HarnessError("root digest unreadable on " + hosts[h]->name() + " at op " +
                     std::to_string(op_index));
        continue;
      }
      groups[DigestStateKey(h)][rows->front().subtree_digest].push_back(hosts[h]->name());
    }
    if (schedule.config.inject_stale_digest) PoisonDigestTree();
    for (uint32_t h = 0; h < hosts.size(); ++h) {
      if (physical(h) == nullptr) continue;
      StatusOr<std::vector<std::string>> problems = physical(h)->ValidateDigestTree();
      if (!problems.ok()) {
        HarnessError("digest validation failed on " + hosts[h]->name() + ": " +
                     problems.status().ToString());
        continue;
      }
      for (const std::string& problem : problems.value()) {
        violations.insert("digest disagreement on " + hosts[h]->name() + " (op " +
                          std::to_string(op_index) + "): " + problem);
      }
    }
    for (const auto& [state, roots] : groups) {
      if (roots.size() <= 1) continue;
      std::string detail;
      for (const auto& [digest, names] : roots) {
        if (!detail.empty()) detail += " vs ";
        detail += names.front() + "(" + std::to_string(digest) + ")";
      }
      violations.insert("replicas with identical state disagree on root subtree digest (op " +
                        std::to_string(op_index) + "): " + detail);
    }
  }

  // Heal-and-quiesce, then run the oracle and the per-host storage checks.
  void Checkpoint(int op_index) {
    ++result.checkpoints;
    cluster.ClearFaults();
    cluster.Heal();
    for (uint32_t h : crashed) {
      Status status = hosts[h]->Reboot();
      if (!status.ok()) {
        HarnessError("reboot of " + hosts[h]->name() + " failed: " + status.ToString());
      }
    }
    crashed.clear();
    // Clear the propagation daemons' retry backoff (capped at 30 s) and
    // any min_age gate before draining them.
    cluster.Sleep(60 * kSecond);
    if (membership()) {
      // Recovery polls: after the sleep every probe is due, so each poll
      // probes every peer — one success revives a condemned host (and
      // runs its resync) before the drain pumps would skip it as dead.
      for (int i = 0; i < 2; ++i) {
        PollMembership();
        cluster.Sleep(kSecond);
      }
    }
    for (int pass = 0; pass < 4; ++pass) {
      PropagationPass();
      cluster.Sleep(kSecond);
    }
    StatusOr<int> rounds = cluster.ReconcileUntilQuiescent(32);
    if (!rounds.ok()) {
      HarnessError("reconciliation failed at op " + std::to_string(op_index) + ": " +
                   rounds.status().ToString());
      return;
    }
    // The round count is ambiguous at the limit; probe quiescence
    // explicitly with one more full pass over the work counters.
    uint64_t before = ReconcileWorkTotal();
    for (FicusHost* host : hosts) (void)host->RunReconciliation();
    if (ReconcileWorkTotal() != before) {
      result.quiesced = false;
      violations.insert("cluster failed to quiesce within 33 reconciliation rounds");
    }

    std::vector<ReplicaView> views;
    for (uint32_t h = 0; h < hosts.size(); ++h) {
      if (physical(h) == nullptr) continue;  // replica retired by a drop op
      views.push_back(ReplicaView{hosts[h]->name(), physical(h), logicals[h]});
    }
    for (const std::string& violation : oracle.CheckFinal(views)) {
      violations.insert(violation);
    }
    for (FicusHost* host : hosts) {
      ScanShadowResidue(host, ufs::kRootInode, "");
      StatusOr<std::vector<std::string>> fsck = host->ufs().Check();
      if (!fsck.ok()) {
        HarnessError("ufs check failed on " + host->name() + ": " + fsck.status().ToString());
      } else {
        for (const std::string& problem : fsck.value()) {
          violations.insert("ufs inconsistency on " + host->name() + ": " + problem);
        }
      }
      for (repl::PhysicalLayer* layer : host->registry().AllLocal()) {
        StatusOr<std::vector<std::string>> check = layer->CheckConsistency();
        if (!check.ok()) {
          HarnessError("physical consistency check failed on " + host->name() + ": " +
                       check.status().ToString());
        } else {
          for (const std::string& problem : check.value()) {
            violations.insert("replica inconsistency on " + host->name() + ": " + problem);
          }
        }
      }
    }
    CheckConvergedLookups(op_index);
    CheckDigestAgreement(op_index);
    CheckMembership(op_index);
  }

  // Membership oracle, run on every converged checkpoint state: after
  // heal-and-quiesce plus the recovery polls, no monitor on a live host
  // may still condemn a live, reachable peer — a lingering dead verdict
  // would suppress propagation towards a host that is serving writes,
  // which is exactly how a detector bug turns into lost availability.
  void CheckMembership(int op_index) {
    if (!membership()) return;
    if (schedule.config.inject_false_death && hosts.size() >= 2) {
      // The deliberate bug the guarded test hunts: a verdict flipped to
      // dead with no probe behind it. The oracle below must flag it.
      if (cluster::HeartbeatMonitor* monitor = hosts[0]->heartbeat()) {
        monitor->ForceState(hosts[1]->id(), cluster::PeerState::kDead);
      }
    }
    net::Network& net = cluster.network();
    for (uint32_t a = 0; a < hosts.size(); ++a) {
      cluster::HeartbeatMonitor* monitor = hosts[a]->heartbeat();
      if (monitor == nullptr || !net.HostUp(hosts[a]->id())) continue;
      for (uint32_t b = 0; b < hosts.size(); ++b) {
        if (a == b) continue;
        net::HostId peer = hosts[b]->id();
        if (!net.HostUp(peer) || !net.Reachable(hosts[a]->id(), peer)) continue;
        if (monitor->IsDead(peer)) {
          violations.insert("membership: " + hosts[a]->name() +
                            " still marks reachable peer " + hosts[b]->name() +
                            " dead after heal-and-quiesce (op " + std::to_string(op_index) +
                            ")");
        }
      }
    }
  }

  uint64_t ReconcileRemoteCallTotal() const {
    uint64_t total = 0;
    for (FicusHost* host : hosts) {
      if (const repl::ReconcileStats* stats = host->reconcile_stats(volume)) {
        total += stats->remote_calls;
      }
    }
    return total;
  }
};

Status SetUp(Runner& r) {
  const CheckerConfig& config = r.schedule.config;
  HostConfig host_config;
  // Small disks keep per-schedule setup cheap; the op universe is tiny.
  host_config.disk_blocks = 2048;
  host_config.inode_count = 512;
  host_config.cache_blocks = 128;
  host_config.reconcile.digest_guided = config.reconcile_digest_guided;
  // Route every install through the block-remap (delta) commit: the
  // checker's payloads are tiny, so without dropping the gates the
  // journal path would never run under differential/thread schedules.
  host_config.physical.commit_min_bytes = 0;
  host_config.physical.commit_max_dirty_frac = 1.0;
  if (config.heartbeat || config.inject_false_death) {
    // Full membership participants with the detector's stock timing; the
    // checker's explicit polls (PropagationPass, kAdvance, checkpoints)
    // stand in for the cluster's periodic heartbeat pump.
    host_config.heartbeat = cluster::HeartbeatConfig{};
  }
  if (!config.fault_plan.empty()) {
    // Same patience the fault tier uses: cheap per-attempt timeouts and
    // retry on unreachable, so a lossy network costs sim time, not truth.
    host_config.transport_retry.rpc_timeout = 20 * kMillisecond;
    host_config.transport_retry.backoff_base = 10 * kMillisecond;
    host_config.transport_retry.retry_unreachable = true;
    host_config.transport_retry.rng_seed = r.schedule.seed;
    host_config.propagation.retry_backoff_base = 250 * kMillisecond;
  }
  for (uint32_t h = 0; h < config.hosts; ++h) {
    r.hosts.push_back(r.cluster.AddHost("h" + std::to_string(h), host_config));
  }
  FICUS_ASSIGN_OR_RETURN(r.volume, r.cluster.CreateVolume(r.hosts));
  for (FicusHost* host : r.hosts) {
    FICUS_ASSIGN_OR_RETURN(repl::LogicalLayer * logical,
                           r.cluster.MountEverywhere(host, r.volume));
    r.logicals.push_back(logical);
    if (host->registry().LocalReplica(r.volume) == nullptr) {
      return Status(ErrorCode::kInternal, "host stores no replica after CreateVolume");
    }
  }
  for (uint32_t d = 0; d < config.dirs; ++d) {
    FICUS_RETURN_IF_ERROR(vfs::MkdirAll(r.logicals[0], "d" + std::to_string(d)));
  }
  FICUS_RETURN_IF_ERROR(r.cluster.ReconcileUntilQuiescent(16).status());
  // Resolve the stable directory bindings (root, d0, d1, ...).
  r.parent_ids.push_back(repl::kRootFileId);
  FICUS_ASSIGN_OR_RETURN(std::vector<repl::FicusDirEntry> root_entries,
                         r.physical(0)->ReadDirectory(repl::kRootFileId));
  for (uint32_t d = 0; d < config.dirs; ++d) {
    std::string name = "d" + std::to_string(d);
    bool found = false;
    for (const repl::FicusDirEntry& entry : root_entries) {
      if (entry.alive && entry.name == name) {
        r.parent_ids.push_back(entry.file);
        found = true;
        break;
      }
    }
    if (!found) return Status(ErrorCode::kInternal, "pre-seeded directory missing: " + name);
  }
  r.ObserveDirEverywhere(repl::kRootFileId);
  if (!config.fault_plan.empty()) {
    r.cluster.InstallFaultPlan(net::FaultPlan::Named(config.fault_plan, r.schedule.seed));
  }
  return OkStatus();
}

void ApplyWrite(Runner& r, const Op& op, int op_index) {
  const CheckerConfig& config = r.schedule.config;
  uint32_t slot = op.file % config.files;
  std::string path = SlotPath(config, slot);
  std::string payload = "op" + std::to_string(op_index) + "@h" + std::to_string(op.host);

  // Pre-op version vectors of every stored file at every live replica —
  // whichever replica absorbs the write, its prior state is in here.
  std::map<std::pair<uint32_t, repl::FileId>, repl::VersionVector> pre;
  for (uint32_t h = 0; h < r.hosts.size(); ++h) {
    if (r.IsCrashed(h)) continue;
    repl::PhysicalLayer* layer = r.physical(h);
    if (layer == nullptr) continue;
    for (const repl::FileId& file : layer->StoredFiles()) {
      StatusOr<repl::ReplicaAttributes> attrs = layer->GetAttributes(file);
      if (attrs.ok()) pre[{h, file}] = attrs->vv;
    }
  }

  if (!vfs::WriteFileAt(r.logicals[op.host], path, payload).ok()) {
    ++r.result.ops_skipped;  // conflicted file, no reachable replica, ...
    return;
  }
  ++r.result.ops_applied;

  // Ground truth: exactly one live replica now holds the (unique) payload
  // — the one the logical layer selected for the update. Nothing has
  // propagated yet (no daemon ran), so the match identifies the writer.
  std::vector<uint8_t> payload_bytes(payload.begin(), payload.end());
  int matches = 0;
  uint32_t writer_host = 0;
  repl::FileId writer_file;
  for (uint32_t h = 0; h < r.hosts.size(); ++h) {
    if (r.IsCrashed(h)) continue;
    repl::PhysicalLayer* layer = r.physical(h);
    if (layer == nullptr) continue;
    for (const repl::FileId& file : layer->StoredFiles()) {
      StatusOr<std::vector<uint8_t>> data = layer->ReadAllData(file);
      if (data.ok() && data.value() == payload_bytes) {
        ++matches;
        writer_host = h;
        writer_file = file;
      }
    }
  }
  if (matches == 0) {
    r.violations.insert("op " + std::to_string(op_index) + ": write to '" + path +
                        "' succeeded but no live replica holds the payload");
    return;
  }
  if (matches > 1) {
    r.HarnessError("op " + std::to_string(op_index) +
                   ": payload found at multiple replicas before any propagation");
    return;
  }
  repl::PhysicalLayer* writer = r.physical(writer_host);
  StatusOr<repl::ReplicaAttributes> attrs = writer->GetAttributes(writer_file);
  if (!attrs.ok()) {
    r.HarnessError("op " + std::to_string(op_index) + ": attributes unreadable after write: " +
                   attrs.status().ToString());
    return;
  }
  auto pre_it = pre.find({writer_host, writer_file});
  repl::VersionVector before_vv;
  if (pre_it != pre.end()) before_vv = pre_it->second;
  r.oracle.ObserveWrite(writer_file, attrs->vv, before_vv, payload, op_index);
  r.ObserveParentEverywhere(slot);

  if (config.inject_lost_update && !before_vv.Empty()) {
    // The deliberate bug the guarded tests hunt: roll the version vector
    // back to its pre-write value while keeping the new bytes. Peers now
    // see nothing newer to pull and the update is silently lost.
    (void)writer->InstallVersion(writer_file, payload_bytes, before_vv);
  }
}

void ApplyRemove(Runner& r, const Op& op, int /*op_index*/) {
  uint32_t slot = op.file % r.schedule.config.files;
  std::string path = SlotPath(r.schedule.config, slot);
  if (!vfs::RemovePath(r.logicals[op.host], path).ok()) {
    ++r.result.ops_skipped;
    return;
  }
  ++r.result.ops_applied;
  r.ObserveParentEverywhere(slot);
}

void ApplyRename(Runner& r, const Op& op, int /*op_index*/) {
  const CheckerConfig& config = r.schedule.config;
  uint32_t src_slot = op.file % config.files;
  uint32_t dst_slot = static_cast<uint32_t>(op.arg) % config.files;
  if (src_slot == dst_slot) {
    ++r.result.ops_skipped;
    return;
  }
  std::string src = SlotPath(config, src_slot);
  std::string dst = SlotPath(config, dst_slot);
  if (!vfs::RenamePath(r.logicals[op.host], src, dst).ok()) {
    ++r.result.ops_skipped;
    return;
  }
  ++r.result.ops_applied;
  r.ObserveParentEverywhere(src_slot);
  r.ObserveParentEverywhere(dst_slot);
}

void ApplyLookup(Runner& r, const Op& op, int op_index) {
  const CheckerConfig& config = r.schedule.config;
  uint32_t slot = op.file % config.files;
  std::string path = SlotPath(config, slot);
  StatusOr<vfs::VnodePtr> root = r.logicals[op.host]->Root();
  if (!root.ok()) {
    ++r.result.ops_skipped;
    return;
  }
  StatusOr<vfs::VnodePtr> resolved = vfs::WalkPath(root.value(), path, {});
  if (!resolved.ok() && resolved.status().code() != ErrorCode::kNotFound) {
    ++r.result.ops_skipped;  // no reachable replica, conflicted directory, ...
    return;
  }
  ++r.result.ops_applied;
  const bool found = resolved.ok();
  Runner::NameTruth truth = r.ReadNameTruth(slot);
  if (truth.live_replicas == 0) return;
  if (found && !truth.alive_somewhere) {
    r.violations.insert("op " + std::to_string(op_index) + ": stale positive name-cache hit: '" +
                        path + "' resolves at " + r.hosts[op.host]->name() +
                        " but no live replica holds the name alive");
  }
  if (!found && !truth.absent_somewhere) {
    r.violations.insert("op " + std::to_string(op_index) + ": stale negative name-cache hit: '" +
                        path + "' reports absent at " + r.hosts[op.host]->name() +
                        " but every live replica holds the name alive");
  }
}

void ApplyReaddir(Runner& r, const Op& op, int op_index) {
  const CheckerConfig& config = r.schedule.config;
  uint32_t slot = op.file % config.files;
  size_t parent_index = ParentIndex(config, slot);
  if (parent_index >= r.parent_ids.size()) {
    ++r.result.ops_skipped;
    return;
  }
  StatusOr<vfs::VnodePtr> dir = r.logicals[op.host]->Root();
  if (dir.ok() && parent_index > 0) {
    dir = vfs::WalkPath(dir.value(), "d" + std::to_string(parent_index - 1), {});
  }
  if (!dir.ok()) {
    ++r.result.ops_skipped;
    return;
  }
  StatusOr<std::vector<vfs::DirEntryPlus>> listing = dir.value()->ReaddirPlus({});
  if (!listing.ok()) {
    ++r.result.ops_skipped;  // no reachable replica
    return;
  }
  ++r.result.ops_applied;
  // The listing was served by exactly one live replica, so every row must
  // be alive at SOME live replica (no ghosts from a stale parsed-dir
  // index), and a name alive at EVERY live replica cannot be omitted.
  std::set<std::string> somewhere;   // union of alive names over live replicas
  std::set<std::string> everywhere;  // intersection
  bool first = true;
  int live = 0;
  for (uint32_t h = 0; h < r.hosts.size(); ++h) {
    if (r.IsCrashed(h)) continue;
    repl::PhysicalLayer* layer = r.physical(h);
    if (layer == nullptr) continue;
    StatusOr<std::vector<repl::FicusDirEntry>> raw =
        layer->ReadDirectory(r.parent_ids[parent_index]);
    if (!raw.ok()) continue;
    ++live;
    std::set<std::string> alive_names;
    for (const repl::FicusDirEntry& entry : raw.value()) {
      if (entry.alive) alive_names.insert(entry.name);
    }
    somewhere.insert(alive_names.begin(), alive_names.end());
    if (first) {
      everywhere = alive_names;
      first = false;
    } else {
      std::set<std::string> kept;
      for (const std::string& name : everywhere) {
        if (alive_names.count(name) != 0) kept.insert(name);
      }
      everywhere = std::move(kept);
    }
  }
  if (live == 0) return;
  // Presentation suffixes ("name#<hex>" on conflicted duplicates) are
  // stripped back to the stored name before comparing against raw state.
  std::set<std::string> listed;
  for (const vfs::DirEntryPlus& row : listing.value()) {
    listed.insert(row.entry.name.substr(0, row.entry.name.find('#')));
  }
  for (const std::string& name : listed) {
    if (somewhere.count(name) == 0) {
      r.violations.insert("op " + std::to_string(op_index) + ": readdirplus ghost entry '" +
                          name + "' at " + r.hosts[op.host]->name() +
                          ": no live replica holds the name alive");
    }
  }
  for (const std::string& name : everywhere) {
    if (listed.count(name) == 0) {
      r.violations.insert("op " + std::to_string(op_index) + ": readdirplus at " +
                          r.hosts[op.host]->name() + " omits '" + name +
                          "' although every live replica holds it alive");
    }
  }
}

void ApplyOp(Runner& r, const Op& raw_op, int op_index) {
  const CheckerConfig& config = r.schedule.config;
  Op op = raw_op;
  op.host = op.host % config.hosts;
  // Ops aimed at a crashed host are skipped deterministically (shrinking
  // can separate an op from the reboot that made it plausible).
  bool needs_live_host =
      op.kind == OpKind::kWrite || op.kind == OpKind::kRemove || op.kind == OpKind::kRename ||
      op.kind == OpKind::kLookup || op.kind == OpKind::kReaddir ||
      op.kind == OpKind::kCrash || op.kind == OpKind::kReconcile ||
      op.kind == OpKind::kAddReplica || op.kind == OpKind::kDropReplica;
  if (needs_live_host && r.IsCrashed(op.host)) {
    ++r.result.ops_skipped;
    return;
  }
  switch (op.kind) {
    case OpKind::kWrite:
      ApplyWrite(r, op, op_index);
      break;
    case OpKind::kRemove:
      ApplyRemove(r, op, op_index);
      break;
    case OpKind::kRename:
      ApplyRename(r, op, op_index);
      break;
    case OpKind::kLookup:
      ApplyLookup(r, op, op_index);
      break;
    case OpKind::kReaddir:
      ApplyReaddir(r, op, op_index);
      break;
    case OpKind::kCrash:
      r.hosts[op.host]->Crash();
      r.crashed.insert(op.host);
      ++r.result.ops_applied;
      break;
    case OpKind::kReboot: {
      if (!r.IsCrashed(op.host)) {
        ++r.result.ops_skipped;
        break;
      }
      Status status = r.hosts[op.host]->Reboot();
      if (!status.ok()) {
        r.HarnessError("op " + std::to_string(op_index) + ": reboot failed: " +
                       status.ToString());
        break;
      }
      r.crashed.erase(op.host);
      ++r.result.ops_applied;
      break;
    }
    case OpKind::kPartition: {
      std::vector<FicusHost*> group_a;
      std::vector<FicusHost*> group_b;
      for (size_t h = 0; h < r.hosts.size(); ++h) {
        ((op.arg >> h) & 1 ? group_a : group_b).push_back(r.hosts[h]);
      }
      if (group_a.empty() || group_b.empty()) {
        ++r.result.ops_skipped;
        break;
      }
      r.cluster.Partition({group_a, group_b});
      ++r.result.ops_applied;
      break;
    }
    case OpKind::kHeal:
      r.cluster.Heal();
      ++r.result.ops_applied;
      break;
    case OpKind::kPropagate:
      r.PropagationPass();
      ++r.result.ops_applied;
      break;
    case OpKind::kReconcile:
      (void)r.hosts[op.host]->RunReconciliation();
      ++r.result.ops_applied;
      break;
    case OpKind::kAdvance:
      r.cluster.Sleep(static_cast<SimTime>(op.arg) * kMillisecond);
      // Probes come due as simulated time passes; this is where a crashed
      // or partitioned peer accumulates the misses that condemn it.
      r.PollMembership();
      ++r.result.ops_applied;
      break;
    case OpKind::kCheckpoint:
      r.Checkpoint(op_index);
      ++r.result.ops_applied;
      break;
    case OpKind::kAddReplica: {
      // Re-replicates a volume onto a host whose replica a drop retired.
      // Refused (and counted skipped) while the host still stores one.
      StatusOr<repl::ReplicaId> added = r.cluster.AddReplica(r.volume, r.hosts[op.host]);
      if (!added.ok()) {
        ++r.result.ops_skipped;
        break;
      }
      ++r.result.ops_applied;
      break;
    }
    case OpKind::kDropReplica: {
      if (op.host == 0) {
        ++r.result.ops_skipped;  // host 0 anchors the ground-truth reads
        break;
      }
      // Goes through the safe-retire gate: under a partition or unhealed
      // loss the drop is refused rather than discarding the only copy of
      // partition-era updates — the refusal is a deterministic skip.
      Status status = r.cluster.RemoveReplica(r.volume, r.hosts[op.host]);
      if (!status.ok()) {
        ++r.result.ops_skipped;
        break;
      }
      ++r.result.ops_applied;
      break;
    }
  }
}

}  // namespace

std::string RunResult::Summary() const {
  std::string out = "applied " + std::to_string(ops_applied) + ", skipped " +
                    std::to_string(ops_skipped) + ", checkpoints " +
                    std::to_string(checkpoints);
  if (!quiesced) out += ", NOT QUIESCED";
  for (const std::string& violation : violations) out += "\n  violation: " + violation;
  for (const std::string& error : harness_errors) out += "\n  harness error: " + error;
  return out;
}

RunResult ModelChecker::Run(const Schedule& schedule) {
  Runner runner(schedule, runtime_options_);
  if (schedule.config.hosts == 0 || schedule.config.files == 0) {
    runner.HarnessError("config needs at least one host and one file slot");
    return runner.result;
  }
  Status setup = SetUp(runner);
  if (!setup.ok()) {
    runner.HarnessError("cluster setup failed: " + setup.ToString());
    return runner.result;
  }
  for (size_t i = 0; i < schedule.ops.size(); ++i) {
    ApplyOp(runner, schedule.ops[i], static_cast<int>(i));
    // Distinct mtimes per op keep on-disk stamps deterministic but unequal.
    runner.cluster.Sleep(kMillisecond);
  }
  runner.Checkpoint(static_cast<int>(schedule.ops.size()));
  runner.result.converged_digest = runner.ConvergedDigest();
  runner.result.reconcile_remote_calls = runner.ReconcileRemoteCallTotal();
  runner.result.violations.assign(runner.violations.begin(), runner.violations.end());
  return runner.result;
}

DifferentialResult RunDifferential(const Schedule& schedule) {
  DifferentialResult out;
  ModelChecker deterministic{RuntimeOptions{}};
  RuntimeOptions threaded_options;
  threaded_options.mode = RuntimeMode::kThreaded;
  ModelChecker threaded{threaded_options};
  out.deterministic = deterministic.Run(schedule);
  out.threaded = threaded.Run(schedule);
  out.digests_match = !out.deterministic.converged_digest.empty() &&
                      out.deterministic.converged_digest == out.threaded.converged_digest;
  return out;
}

ModelChecker::ExploreResult ModelChecker::Explore(
    const CheckerConfig& config, uint64_t base_seed, int count,
    const std::function<void(uint64_t, const RunResult&)>& on_result) {
  ExploreResult result;
  Rng seeds(base_seed);
  for (int i = 0; i < count; ++i) {
    uint64_t seed = seeds.Next();
    Schedule schedule = GenerateSchedule(config, seed);
    RunResult run = Run(schedule);
    ++result.schedules;
    result.total_ops += schedule.ops.size();
    if (run.failed()) result.failing_seeds.push_back(seed);
    if (on_result) on_result(seed, run);
  }
  return result;
}

Schedule ModelChecker::Shrink(const Schedule& schedule) {
  std::vector<Op> current = schedule.ops;
  auto violates = [&](const std::vector<Op>& ops) {
    Schedule candidate = schedule;
    candidate.ops = ops;
    return Run(candidate).failed();
  };
  if (!violates(current)) return schedule;

  // ddmin: try dropping ever-finer chunks as long as the violation stays.
  size_t granularity = 2;
  while (current.size() >= 2) {
    size_t chunk = (current.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (size_t start = 0; start < current.size(); start += chunk) {
      std::vector<Op> candidate(current.begin(), current.begin() + start);
      size_t resume = std::min(start + chunk, current.size());
      candidate.insert(candidate.end(), current.begin() + resume, current.end());
      if (!candidate.empty() && violates(candidate)) {
        current = std::move(candidate);
        granularity = std::max<size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= current.size()) break;
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  // Greedy 1-minimal polish: no single remaining op can be dropped.
  bool changed = true;
  while (changed && current.size() > 1) {
    changed = false;
    for (size_t i = 0; i < current.size(); ++i) {
      std::vector<Op> candidate = current;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (violates(candidate)) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  Schedule out = schedule;
  out.ops = std::move(current);
  return out;
}

}  // namespace ficus::sim::checker
