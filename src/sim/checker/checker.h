// The model-checking harness: builds a small cluster, runs a Schedule
// against it, checks the OneCopyOracle after every heal-and-quiesce, and
// delta-debugs failing schedules down to a minimal repro.
#ifndef FICUS_SRC_SIM_CHECKER_CHECKER_H_
#define FICUS_SRC_SIM_CHECKER_CHECKER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/runtime.h"
#include "src/sim/checker/oracle.h"
#include "src/sim/checker/schedule.h"

namespace ficus::sim::checker {

struct RunResult {
  // Oracle violations (deterministic, deduplicated). Non-empty = the
  // schedule falsified a convergence property.
  std::vector<std::string> violations;
  // Harness problems (setup failed, replay infrastructure broke) — NOT
  // oracle verdicts; a run with harness errors proves nothing.
  std::vector<std::string> harness_errors;
  int ops_applied = 0;
  int ops_skipped = 0;  // implausible after shrinking, crashed hosts, refused ops
  int checkpoints = 0;
  bool quiesced = true;
  // Canonical text of the fully converged replica state (every host's
  // stored files: type, version vector, conflict flag, contents, alive
  // directory entries — mtimes excluded, they are wall-clock artifacts).
  // Two runs of the same schedule that end in the same logical state have
  // equal digests; the differential test compares this across runtimes.
  std::string converged_digest;
  // Total reconciliation RPCs issued across every host's reconcilers
  // (repl::ReconcileStats::remote_calls summed at the end of the run).
  // The digest-vs-full-walk differential asserts this shrinks strictly
  // when digest guidance is on.
  uint64_t reconcile_remote_calls = 0;

  bool failed() const { return !violations.empty(); }
  std::string Summary() const;
};

class ModelChecker {
 public:
  // `runtime_options` selects the cluster execution mode for every run:
  // deterministic (default) replays schedules bit-for-bit; threaded runs
  // the same schedule over real NFS service pools and propagation worker
  // threads.
  explicit ModelChecker(const RuntimeOptions& runtime_options = RuntimeOptions{})
      : runtime_options_(runtime_options) {}

  // Runs one schedule start to finish (a final heal-and-quiesce checkpoint
  // is always appended). Deterministic: same schedule, same result.
  RunResult Run(const Schedule& schedule);

  struct ExploreResult {
    int schedules = 0;
    uint64_t total_ops = 0;
    std::vector<uint64_t> failing_seeds;
  };
  // Generates and runs `count` schedules with seeds drawn deterministically
  // from `base_seed`. `on_result` (optional) sees every run.
  ExploreResult Explore(const CheckerConfig& config, uint64_t base_seed, int count,
                        const std::function<void(uint64_t, const RunResult&)>& on_result = {});

  // ddmin over the op list, then a greedy 1-minimal pass: returns the
  // smallest schedule found that still produces an oracle violation.
  // Returns the input unchanged if its violation does not reproduce.
  Schedule Shrink(const Schedule& schedule);

 private:
  RuntimeOptions runtime_options_;
};

// One schedule, both runtimes. The threaded run must be oracle-clean
// whenever the deterministic run is, and both must converge to the same
// replica state (equal digests) — the differential acceptance criterion.
struct DifferentialResult {
  RunResult deterministic;
  RunResult threaded;
  bool digests_match = false;
};
DifferentialResult RunDifferential(const Schedule& schedule);

}  // namespace ficus::sim::checker

#endif  // FICUS_SRC_SIM_CHECKER_CHECKER_H_
