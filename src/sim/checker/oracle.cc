#include "src/sim/checker/oracle.h"

#include <algorithm>
#include <deque>
#include <set>

#include "src/vfs/path_ops.h"

namespace ficus::sim::checker {

namespace {

std::string Describe(const repl::FileId& file) { return file.ToString(); }

// Canonical one-line rendering of a raw entry for comparisons and
// violation messages.
std::string EntryString(const repl::FicusDirEntry& entry) {
  std::string out = entry.name + "#" + entry.file.ToHex();
  out += entry.alive ? " alive " : " dead ";
  out += entry.vv.ToString();
  if (!entry.deleted_file_vv.Empty()) out += " dfv=" + entry.deleted_file_vv.ToString();
  return out;
}

std::vector<std::string> CanonicalEntrySet(const std::vector<repl::FicusDirEntry>& entries) {
  std::vector<std::string> out;
  out.reserve(entries.size());
  for (const repl::FicusDirEntry& entry : entries) out.push_back(EntryString(entry));
  std::sort(out.begin(), out.end());
  return out;
}

// Recursive namespace snapshot through the client-visible logical layer;
// conflicted files collapse to a marker, like the convergence suite does.
Status LogicalSnapshot(vfs::Vfs* fs, const std::string& path,
                       std::map<std::string, std::string>& out) {
  FICUS_ASSIGN_OR_RETURN(std::vector<vfs::DirEntry> entries, vfs::ListDir(fs, path));
  for (const vfs::DirEntry& entry : entries) {
    std::string child = path.empty() ? entry.name : path + "/" + entry.name;
    if (entry.type == vfs::VnodeType::kDirectory ||
        entry.type == vfs::VnodeType::kGraftPoint) {
      out[child] = "<dir>";
      FICUS_RETURN_IF_ERROR(LogicalSnapshot(fs, child, out));
    } else if (entry.type == vfs::VnodeType::kSymlink) {
      out[child] = "<symlink>";
    } else {
      StatusOr<std::string> contents = vfs::ReadFileAt(fs, child);
      if (contents.ok()) {
        out[child] = contents.value();
      } else if (contents.status().code() == ErrorCode::kConflict) {
        out[child] = "<conflict>";
      } else {
        return contents.status();
      }
    }
  }
  return OkStatus();
}

}  // namespace

void OneCopyOracle::ObserveWrite(const repl::FileId& file, const repl::VersionVector& vv,
                                 const repl::VersionVector& before_vv,
                                 const std::string& payload, int op_index) {
  if (!vv.StrictlyDominates(before_vv)) {
    violations_.push_back("op " + std::to_string(op_index) + ": write to " + Describe(file) +
                          " did not advance the version vector (" + before_vv.ToString() +
                          " -> " + vv.ToString() + ")");
  }
  for (const WriteObs& prior : writes_[file]) {
    if (prior.vv == vv && prior.payload != payload) {
      violations_.push_back("op " + std::to_string(op_index) + ": " + Describe(file) +
                            " minted version " + vv.ToString() +
                            " twice with different contents (first at op " +
                            std::to_string(prior.op_index) + ")");
    }
  }
  writes_[file].push_back(WriteObs{vv, payload, op_index});
}

void OneCopyOracle::ObserveDirectory(const repl::FileId& dir,
                                     const std::vector<repl::FicusDirEntry>& entries) {
  for (const repl::FicusDirEntry& entry : entries) {
    EntryKey key{dir, entry.name, entry.file};
    std::vector<EntryObs>& states = entries_[key];
    // Dedupe identical consecutive observations to bound growth.
    bool known = false;
    for (const EntryObs& state : states) {
      if (state.alive == entry.alive && state.vv == entry.vv &&
          state.deleted_file_vv == entry.deleted_file_vv) {
        known = true;
        break;
      }
    }
    if (!known) {
      states.push_back(EntryObs{entry.vv, entry.alive, entry.deleted_file_vv});
    }
  }
}

std::vector<const OneCopyOracle::WriteObs*> OneCopyOracle::MaximalWrites(
    const repl::FileId& file) const {
  std::vector<const WriteObs*> maximal;
  auto it = writes_.find(file);
  if (it == writes_.end()) return maximal;
  for (const WriteObs& candidate : it->second) {
    bool dominated = false;
    for (const WriteObs& other : it->second) {
      if (&other != &candidate && other.vv.StrictlyDominates(candidate.vv)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    // Equal vectors (idempotent duplicate observation) keep one entry.
    bool duplicate = false;
    for (const WriteObs* kept : maximal) {
      if (kept->vv == candidate.vv) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) maximal.push_back(&candidate);
  }
  return maximal;
}

void OneCopyOracle::AddViolation(std::vector<std::string>& out, const std::string& what) {
  out.push_back(what);
}

std::vector<std::string> OneCopyOracle::CheckFinal(const std::vector<ReplicaView>& replicas) {
  std::vector<std::string> out = violations_;
  if (replicas.empty()) return out;
  repl::PhysicalLayer* base = replicas[0].physical;

  // --- Walk the converged namespace from the root, checking that every
  // replica holds the identical raw entry set and directory vector, and
  // collecting the alive-reachable files. ---
  std::map<repl::FileId, std::vector<repl::FicusDirEntry>> dir_entries;  // replica 0's view
  std::map<repl::FileId, repl::FicusFileType> alive_files;
  std::set<repl::FileId> alive_dirs;
  std::deque<repl::FileId> queue;
  queue.push_back(repl::kRootFileId);
  alive_dirs.insert(repl::kRootFileId);
  while (!queue.empty()) {
    repl::FileId dir = queue.front();
    queue.pop_front();
    StatusOr<std::vector<repl::FicusDirEntry>> base_entries = base->ReadDirectory(dir);
    if (!base_entries.ok()) {
      AddViolation(out, "cannot read directory " + Describe(dir) + " at " +
                            replicas[0].host_name + ": " + base_entries.status().ToString());
      continue;
    }
    dir_entries[dir] = base_entries.value();
    std::vector<std::string> base_canonical = CanonicalEntrySet(base_entries.value());
    StatusOr<repl::ReplicaAttributes> base_attrs = base->GetAttributes(dir);
    for (size_t r = 1; r < replicas.size(); ++r) {
      StatusOr<std::vector<repl::FicusDirEntry>> peer_entries =
          replicas[r].physical->ReadDirectory(dir);
      if (!peer_entries.ok()) {
        AddViolation(out, "cannot read directory " + Describe(dir) + " at " +
                              replicas[r].host_name + ": " + peer_entries.status().ToString());
        continue;
      }
      std::vector<std::string> peer_canonical = CanonicalEntrySet(peer_entries.value());
      if (peer_canonical != base_canonical) {
        std::string detail;
        for (const std::string& entry : base_canonical) {
          if (!std::binary_search(peer_canonical.begin(), peer_canonical.end(), entry)) {
            detail += " [only " + replicas[0].host_name + ": " + entry + "]";
          }
        }
        for (const std::string& entry : peer_canonical) {
          if (!std::binary_search(base_canonical.begin(), base_canonical.end(), entry)) {
            detail += " [only " + replicas[r].host_name + ": " + entry + "]";
          }
        }
        AddViolation(out, "directory " + Describe(dir) + " diverges between " +
                              replicas[0].host_name + " and " + replicas[r].host_name + ":" +
                              detail);
      }
      StatusOr<repl::ReplicaAttributes> peer_attrs = replicas[r].physical->GetAttributes(dir);
      if (base_attrs.ok() && peer_attrs.ok() && !(base_attrs->vv == peer_attrs->vv)) {
        AddViolation(out, "directory " + Describe(dir) + " version vectors diverge: " +
                              base_attrs->vv.ToString() + " at " + replicas[0].host_name +
                              " vs " + peer_attrs->vv.ToString() + " at " +
                              replicas[r].host_name);
      }
    }
    for (const repl::FicusDirEntry& entry : base_entries.value()) {
      if (!entry.alive) continue;
      if (repl::IsDirectoryLike(entry.type)) {
        if (alive_dirs.insert(entry.file).second) queue.push_back(entry.file);
      } else {
        alive_files[entry.file] = entry.type;
      }
    }
  }

  // --- Per alive file: replicas agree, and the converged state matches a
  // concurrent-maximal observed write (or is a flagged conflict). ---
  for (const auto& [file, type] : alive_files) {
    struct FileState {
      size_t replica_index;
      repl::ReplicaAttributes attrs;
      std::string content;
    };
    std::vector<FileState> states;
    for (size_t r = 0; r < replicas.size(); ++r) {
      if (!replicas[r].physical->Stores(file)) continue;
      StatusOr<repl::ReplicaAttributes> attrs = replicas[r].physical->GetAttributes(file);
      if (!attrs.ok()) {
        AddViolation(out, "alive file " + Describe(file) + " unreadable attributes at " +
                              replicas[r].host_name + ": " + attrs.status().ToString());
        continue;
      }
      std::string content;
      if (type == repl::FicusFileType::kRegular) {
        StatusOr<std::vector<uint8_t>> bytes = replicas[r].physical->ReadAllData(file);
        if (!bytes.ok()) {
          AddViolation(out, "alive file " + Describe(file) + " unreadable at " +
                                replicas[r].host_name + ": " + bytes.status().ToString());
          continue;
        }
        content.assign(bytes->begin(), bytes->end());
      }
      states.push_back(FileState{r, std::move(attrs).value(), std::move(content)});
    }
    if (states.empty()) {
      AddViolation(out, "alive file " + Describe(file) + " is stored by no replica");
      continue;
    }
    bool conflicted = false;
    for (const FileState& state : states) conflicted = conflicted || state.attrs.conflict;
    if (conflicted) {
      for (const FileState& state : states) {
        if (!state.attrs.conflict) {
          AddViolation(out, "conflict flag for " + Describe(file) + " missing at " +
                                replicas[state.replica_index].host_name);
        }
      }
    } else {
      for (size_t i = 1; i < states.size(); ++i) {
        if (!(states[i].attrs.vv == states[0].attrs.vv) ||
            states[i].content != states[0].content) {
          AddViolation(out, "non-conflicted file " + Describe(file) + " diverges: " +
                                states[0].attrs.vv.ToString() + " at " +
                                replicas[states[0].replica_index].host_name + " vs " +
                                states[i].attrs.vv.ToString() + " at " +
                                replicas[states[i].replica_index].host_name);
        }
      }
    }

    if (type != repl::FicusFileType::kRegular) continue;
    std::vector<const WriteObs*> maximal = MaximalWrites(file);
    if (maximal.empty()) continue;  // created but never successfully written
    if (conflicted) {
      if (maximal.size() < 2) {
        AddViolation(out, "file " + Describe(file) +
                              " flagged conflicted but its observed writes are totally "
                              "ordered (max " +
                              maximal[0]->vv.ToString() + ")");
      }
      for (const FileState& state : states) {
        bool matches = false;
        for (const WriteObs* obs : maximal) {
          if (obs->vv == state.attrs.vv && obs->payload == state.content) matches = true;
        }
        if (!matches) {
          AddViolation(out, "conflicted file " + Describe(file) + " at " +
                                replicas[state.replica_index].host_name + " holds " +
                                state.attrs.vv.ToString() +
                                " which matches no concurrent-maximal observed write");
        }
      }
    } else {
      if (maximal.size() > 1) {
        std::string versions;
        for (const WriteObs* obs : maximal) {
          if (!versions.empty()) versions += ", ";
          versions += obs->vv.ToString();
        }
        AddViolation(out, "lost update: file " + Describe(file) +
                              " has concurrent observed writes {" + versions +
                              "} but converged without a conflict flag");
      } else {
        const WriteObs* winner = maximal[0];
        const FileState& state = states[0];
        if (!(state.attrs.vv == winner->vv) || state.content != winner->payload) {
          AddViolation(out, "lost update: file " + Describe(file) + " converged to " +
                                state.attrs.vv.ToString() +
                                " but the maximal observed write is " + winner->vv.ToString() +
                                " (op " + std::to_string(winner->op_index) + ")");
        }
      }
    }
  }

  // --- Membership: no orphaned or resurrected entries. ---
  for (const auto& [key, observations] : entries_) {
    const auto& [dir, name, file] = key;
    if (alive_dirs.count(dir) == 0) continue;  // whole subtree is gone
    auto dir_it = dir_entries.find(dir);
    if (dir_it == dir_entries.end()) continue;

    // Maximal observed states for this entry.
    std::vector<const EntryObs*> maximal;
    for (const EntryObs& candidate : observations) {
      bool dominated = false;
      for (const EntryObs& other : observations) {
        if (&other != &candidate && other.vv.StrictlyDominates(candidate.vv)) dominated = true;
      }
      if (!dominated) maximal.push_back(&candidate);
    }
    if (maximal.empty()) continue;
    bool all_alive = true;
    bool all_dead = true;
    for (const EntryObs* obs : maximal) {
      all_alive = all_alive && obs->alive;
      all_dead = all_dead && !obs->alive;
    }

    const repl::FicusDirEntry* final_entry = nullptr;
    for (const repl::FicusDirEntry& entry : dir_it->second) {
      if (entry.name == name && entry.file == file) final_entry = &entry;
    }
    bool final_alive = final_entry != nullptr && final_entry->alive;

    if (all_alive && !final_alive) {
      AddViolation(out, "orphaned entry: '" + name + "' -> " + Describe(file) + " in " +
                            Describe(dir) +
                            " was only ever observed alive but is gone after convergence");
    }
    if (all_dead && final_alive) {
      // Resurrection is legitimate when some tombstone was an uninformed
      // delete: its deleted_file_vv failed to cover an observed content
      // version (the paper's remove/update conflict, repaired by keeping
      // the file). Only an informed delete must stay dead.
      bool informed = true;
      for (const EntryObs* obs : maximal) {
        if (obs->deleted_file_vv.Empty()) {
          informed = false;  // rename tombstones carry no content judgement
          continue;
        }
        auto writes_it = writes_.find(file);
        if (writes_it == writes_.end()) continue;
        for (const WriteObs& write : writes_it->second) {
          if (!obs->deleted_file_vv.Dominates(write.vv)) informed = false;
        }
      }
      if (informed) {
        AddViolation(out, "resurrected entry: '" + name + "' -> " + Describe(file) + " in " +
                              Describe(dir) +
                              " is alive after convergence although every maximal "
                              "observation is an informed delete");
      }
    }
  }

  // --- Client-visible one-copy image: every logical mount presents the
  // identical namespace, conflicts included. ---
  std::map<std::string, std::string> base_snapshot;
  Status snap_status = LogicalSnapshot(replicas[0].logical, "", base_snapshot);
  if (!snap_status.ok()) {
    AddViolation(out, "logical snapshot failed at " + replicas[0].host_name + ": " +
                          snap_status.ToString());
  } else {
    for (size_t r = 1; r < replicas.size(); ++r) {
      std::map<std::string, std::string> peer_snapshot;
      Status status = LogicalSnapshot(replicas[r].logical, "", peer_snapshot);
      if (!status.ok()) {
        AddViolation(out, "logical snapshot failed at " + replicas[r].host_name + ": " +
                              status.ToString());
        continue;
      }
      if (peer_snapshot != base_snapshot) {
        std::string detail;
        for (const auto& [path, value] : base_snapshot) {
          auto it = peer_snapshot.find(path);
          if (it == peer_snapshot.end()) {
            detail = "'" + path + "' missing at " + replicas[r].host_name;
            break;
          }
          if (it->second != value) {
            detail = "'" + path + "' differs";
            break;
          }
        }
        if (detail.empty()) detail = "extra entries at " + replicas[r].host_name;
        AddViolation(out, "logical namespaces diverge between " + replicas[0].host_name +
                              " and " + replicas[r].host_name + ": " + detail);
      }
    }
  }

  return out;
}

}  // namespace ficus::sim::checker
