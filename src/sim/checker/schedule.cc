#include "src/sim/checker/schedule.h"

#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "src/common/rng.h"

namespace ficus::sim::checker {

namespace {

struct KindName {
  OpKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {OpKind::kWrite, "write"},         {OpKind::kRemove, "remove"},
    {OpKind::kRename, "rename"},       {OpKind::kLookup, "lookup"},
    {OpKind::kReaddir, "readdir"},     {OpKind::kCrash, "crash"},
    {OpKind::kReboot, "reboot"},       {OpKind::kPartition, "partition"},
    {OpKind::kHeal, "heal"},           {OpKind::kPropagate, "propagate"},
    {OpKind::kReconcile, "reconcile"}, {OpKind::kAdvance, "advance"},
    {OpKind::kCheckpoint, "checkpoint"},
    {OpKind::kAddReplica, "add_replica"},
    {OpKind::kDropReplica, "drop_replica"},
};

}  // namespace

const char* OpKindName(OpKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

StatusOr<OpKind> OpKindFromName(std::string_view name) {
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) return entry.kind;
  }
  return Status(ErrorCode::kInvalidArgument, "unknown op kind: " + std::string(name));
}

std::string SlotPath(const CheckerConfig& config, uint32_t index) {
  // Every third slot lives at the root; the rest spread over the dirs.
  if (config.dirs == 0 || index % 3 == 0) return "f" + std::to_string(index);
  return "d" + std::to_string(index % config.dirs) + "/f" + std::to_string(index);
}

Schedule GenerateSchedule(const CheckerConfig& config, uint64_t seed) {
  Schedule schedule;
  schedule.seed = seed;
  schedule.config = config;
  Rng rng(seed);

  // Generation-time plausibility state: which hosts are down, whether a
  // partition is in force. (Shrinking may break plausibility; the runner
  // skips implausible ops deterministically.)
  std::set<uint32_t> crashed;
  std::set<uint32_t> dropped;  // hosts whose replica a drop op retired
  bool partitioned = false;

  auto live_host = [&]() -> uint32_t {
    uint32_t h;
    do {
      h = static_cast<uint32_t>(rng.NextBelow(config.hosts));
    } while (crashed.count(h) != 0);
    return h;
  };

  // Hosts eligible for a drop op: live, still storing a replica, and never
  // host 0 (it anchors the checker's ground-truth reads).
  auto droppable = [&]() {
    std::vector<uint32_t> out;
    for (uint32_t h = 1; h < config.hosts; ++h) {
      if (crashed.count(h) == 0 && dropped.count(h) == 0) out.push_back(h);
    }
    return out;
  };

  for (uint32_t i = 0; i < config.ops; ++i) {
    uint64_t roll = rng.NextBelow(100);
    Op op;
    if (roll < 30) {
      op.kind = OpKind::kWrite;
      op.host = live_host();
      op.file = static_cast<uint32_t>(rng.NextBelow(config.files));
    } else if (roll < 38) {
      op.kind = OpKind::kRemove;
      op.host = live_host();
      op.file = static_cast<uint32_t>(rng.NextBelow(config.files));
    } else if (roll < 44) {
      op.kind = OpKind::kRename;
      op.host = live_host();
      op.file = static_cast<uint32_t>(rng.NextBelow(config.files));
      op.arg = rng.NextBelow(config.files);
    } else if (roll < 52) {
      // Namespace reads interleave with the mutations so name-cache
      // bindings (positive and negative) exist when invalidations race
      // with propagation, partitions, and reconciliation.
      op.kind = OpKind::kLookup;
      op.host = live_host();
      op.file = static_cast<uint32_t>(rng.NextBelow(config.files));
    } else if (roll < 56) {
      op.kind = OpKind::kReaddir;
      op.host = live_host();
      op.file = static_cast<uint32_t>(rng.NextBelow(config.files));
    } else if (roll < 61 && crashed.size() + 1 < config.hosts) {
      op.kind = OpKind::kCrash;
      op.host = live_host();
      crashed.insert(op.host);
    } else if (roll < 66 && !crashed.empty()) {
      // Reboot the lowest crashed host (deterministic pick).
      op.kind = OpKind::kReboot;
      op.host = *crashed.begin();
      crashed.erase(op.host);
    } else if (roll < 72 && config.hosts >= 2) {
      op.kind = OpKind::kPartition;
      // Any mask with both groups non-empty.
      op.arg = 1 + rng.NextBelow((1ull << config.hosts) - 2);
      partitioned = true;
    } else if (roll < 77 && partitioned) {
      op.kind = OpKind::kHeal;
      partitioned = false;
    } else if (roll < 85) {
      op.kind = OpKind::kPropagate;
    } else if (roll < 91) {
      op.kind = OpKind::kReconcile;
      op.host = live_host();
    } else if (roll < 93 && config.hosts >= 3 && !droppable().empty()) {
      std::vector<uint32_t> candidates = droppable();
      op.kind = OpKind::kDropReplica;
      op.host = candidates[rng.NextBelow(candidates.size())];
      dropped.insert(op.host);
    } else if (roll < 95 && !dropped.empty()) {
      // Re-replicate the lowest dropped host (deterministic pick, like
      // reboot). The runner skips the op if the drop it pairs with was
      // refused by the safe-retire gate.
      op.kind = OpKind::kAddReplica;
      op.host = *dropped.begin();
      dropped.erase(op.host);
    } else if (roll < 99) {
      op.kind = OpKind::kAdvance;
      op.arg = 50 * (1 + rng.NextBelow(10));  // 50ms .. 500ms
    } else {
      op.kind = OpKind::kCheckpoint;
    }
    schedule.ops.push_back(op);
  }
  return schedule;
}

// --- JSON serialization ---
//
// The format is deliberately tiny (flat objects, no nesting beyond the op
// list) so a hand-rolled writer/parser suffices; traces stay greppable and
// hand-editable.

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string ToJson(const Schedule& schedule) {
  std::string out;
  out += "{\n";
  out += "  \"format\": 1,\n";
  out += "  \"seed\": " + std::to_string(schedule.seed) + ",\n";
  out += "  \"hosts\": " + std::to_string(schedule.config.hosts) + ",\n";
  out += "  \"files\": " + std::to_string(schedule.config.files) + ",\n";
  out += "  \"dirs\": " + std::to_string(schedule.config.dirs) + ",\n";
  out += "  \"ops_requested\": " + std::to_string(schedule.config.ops) + ",\n";
  out += "  \"fault_plan\": ";
  AppendEscaped(out, schedule.config.fault_plan);
  out += ",\n";
  out += "  \"inject_lost_update\": ";
  out += schedule.config.inject_lost_update ? "true" : "false";
  out += ",\n";
  out += "  \"inject_stale_name_cache\": ";
  out += schedule.config.inject_stale_name_cache ? "true" : "false";
  out += ",\n";
  out += "  \"inject_stale_digest\": ";
  out += schedule.config.inject_stale_digest ? "true" : "false";
  out += ",\n";
  out += "  \"heartbeat\": ";
  out += schedule.config.heartbeat ? "true" : "false";
  out += ",\n";
  out += "  \"inject_false_death\": ";
  out += schedule.config.inject_false_death ? "true" : "false";
  out += ",\n";
  out += "  \"reconcile_digest_guided\": ";
  out += schedule.config.reconcile_digest_guided ? "true" : "false";
  out += ",\n";
  out += "  \"expect_violation\": ";
  out += schedule.expect_violation ? "true" : "false";
  out += ",\n";
  out += "  \"ops\": [\n";
  for (size_t i = 0; i < schedule.ops.size(); ++i) {
    const Op& op = schedule.ops[i];
    out += "    {\"op\": ";
    AppendEscaped(out, OpKindName(op.kind));
    out += ", \"host\": " + std::to_string(op.host);
    out += ", \"file\": " + std::to_string(op.file);
    out += ", \"arg\": " + std::to_string(op.arg);
    out += "}";
    if (i + 1 < schedule.ops.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

namespace {

// Minimal recursive-descent parser for the subset of JSON traces use:
// objects, arrays, strings, unsigned integers, booleans.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  struct Value {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
    Type type = Type::kNull;
    bool boolean = false;
    uint64_t number = 0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;
  };

  StatusOr<Value> Parse() {
    FICUS_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status(ErrorCode::kInvalidArgument, "trailing characters in JSON trace");
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  Status Fail(const std::string& what) {
    return Status(ErrorCode::kInvalidArgument,
                  "JSON trace parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  StatusOr<Value> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (std::isdigit(static_cast<unsigned char>(c))) return ParseNumber();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      Value v;
      v.type = Value::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      Value v;
      v.type = Value::Type::kBool;
      return v;
    }
    return Fail("unexpected character");
  }

  StatusOr<Value> ParseString() {
    ++pos_;  // opening quote
    Value v;
    v.type = Value::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("truncated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case 'n': v.string += '\n'; break;
          case 't': v.string += '\t'; break;
          default: return Fail("unsupported escape");
        }
      } else {
        v.string += c;
      }
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  StatusOr<Value> ParseNumber() {
    Value v;
    v.type = Value::Type::kNumber;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v.number = v.number * 10 + static_cast<uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    return v;
  }

  StatusOr<Value> ParseArray() {
    ++pos_;  // '['
    Value v;
    v.type = Value::Type::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      FICUS_ASSIGN_OR_RETURN(Value elem, ParseValue());
      v.array.push_back(std::move(elem));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return v;
      }
      return Fail("expected ',' or ']'");
    }
  }

  StatusOr<Value> ParseObject() {
    ++pos_;  // '{'
    Value v;
    v.type = Value::Type::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') return Fail("expected object key");
      FICUS_ASSIGN_OR_RETURN(Value key, ParseString());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      FICUS_ASSIGN_OR_RETURN(Value value, ParseValue());
      v.object.emplace(std::move(key.string), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return v;
      }
      return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<uint64_t> GetNumber(const JsonParser::Value& obj, const std::string& key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() || it->second.type != JsonParser::Value::Type::kNumber) {
    return Status(ErrorCode::kInvalidArgument, "trace missing numeric field: " + key);
  }
  return it->second.number;
}

bool GetBool(const JsonParser::Value& obj, const std::string& key, bool fallback) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() || it->second.type != JsonParser::Value::Type::kBool) {
    return fallback;
  }
  return it->second.boolean;
}

}  // namespace

StatusOr<Schedule> FromJson(std::string_view json) {
  JsonParser parser(json);
  FICUS_ASSIGN_OR_RETURN(JsonParser::Value root, parser.Parse());
  if (root.type != JsonParser::Value::Type::kObject) {
    return Status(ErrorCode::kInvalidArgument, "trace root is not an object");
  }
  FICUS_ASSIGN_OR_RETURN(uint64_t format, GetNumber(root, "format"));
  if (format != 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "unsupported trace format " + std::to_string(format));
  }
  Schedule schedule;
  FICUS_ASSIGN_OR_RETURN(schedule.seed, GetNumber(root, "seed"));
  FICUS_ASSIGN_OR_RETURN(uint64_t hosts, GetNumber(root, "hosts"));
  FICUS_ASSIGN_OR_RETURN(uint64_t files, GetNumber(root, "files"));
  FICUS_ASSIGN_OR_RETURN(uint64_t dirs, GetNumber(root, "dirs"));
  FICUS_ASSIGN_OR_RETURN(uint64_t ops_requested, GetNumber(root, "ops_requested"));
  schedule.config.hosts = static_cast<uint32_t>(hosts);
  schedule.config.files = static_cast<uint32_t>(files);
  schedule.config.dirs = static_cast<uint32_t>(dirs);
  schedule.config.ops = static_cast<uint32_t>(ops_requested);
  if (auto it = root.object.find("fault_plan");
      it != root.object.end() && it->second.type == JsonParser::Value::Type::kString) {
    schedule.config.fault_plan = it->second.string;
  }
  schedule.config.inject_lost_update = GetBool(root, "inject_lost_update", false);
  schedule.config.inject_stale_name_cache = GetBool(root, "inject_stale_name_cache", false);
  schedule.config.inject_stale_digest = GetBool(root, "inject_stale_digest", false);
  schedule.config.heartbeat = GetBool(root, "heartbeat", false);
  schedule.config.inject_false_death = GetBool(root, "inject_false_death", false);
  schedule.config.reconcile_digest_guided = GetBool(root, "reconcile_digest_guided", true);
  schedule.expect_violation = GetBool(root, "expect_violation", false);

  auto ops_it = root.object.find("ops");
  if (ops_it == root.object.end() || ops_it->second.type != JsonParser::Value::Type::kArray) {
    return Status(ErrorCode::kInvalidArgument, "trace missing ops array");
  }
  for (const JsonParser::Value& op_value : ops_it->second.array) {
    if (op_value.type != JsonParser::Value::Type::kObject) {
      return Status(ErrorCode::kInvalidArgument, "trace op is not an object");
    }
    auto name_it = op_value.object.find("op");
    if (name_it == op_value.object.end() ||
        name_it->second.type != JsonParser::Value::Type::kString) {
      return Status(ErrorCode::kInvalidArgument, "trace op missing kind");
    }
    Op op;
    FICUS_ASSIGN_OR_RETURN(op.kind, OpKindFromName(name_it->second.string));
    FICUS_ASSIGN_OR_RETURN(uint64_t host, GetNumber(op_value, "host"));
    FICUS_ASSIGN_OR_RETURN(uint64_t file, GetNumber(op_value, "file"));
    FICUS_ASSIGN_OR_RETURN(op.arg, GetNumber(op_value, "arg"));
    op.host = static_cast<uint32_t>(host);
    op.file = static_cast<uint32_t>(file);
    schedule.ops.push_back(op);
  }
  return schedule;
}

}  // namespace ficus::sim::checker
