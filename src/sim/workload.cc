#include "src/sim/workload.h"

#include "src/vfs/path_ops.h"

namespace ficus::sim {

std::string Workload::PathOf(int rank) const {
  int dir = rank / config_.files_per_directory;
  int file = rank % config_.files_per_directory;
  return "d" + std::to_string(dir) + "/f" + std::to_string(file);
}

Status Workload::Populate(vfs::Vfs* fs) {
  std::string contents(static_cast<size_t>(config_.file_size_bytes), 'x');
  for (int dir = 0; dir < config_.directories; ++dir) {
    FICUS_RETURN_IF_ERROR(vfs::MkdirAll(fs, "d" + std::to_string(dir)));
  }
  for (int rank = 0; rank < file_count(); ++rank) {
    FICUS_RETURN_IF_ERROR(vfs::WriteFileAt(fs, PathOf(rank), contents));
  }
  return OkStatus();
}

Status Workload::Run(vfs::Vfs* fs, int ops) {
  std::string contents(static_cast<size_t>(config_.file_size_bytes), 'y');
  for (int i = 0; i < ops; ++i) {
    int rank = static_cast<int>(
        rng_.NextZipf(static_cast<uint64_t>(file_count()), config_.zipf_skew));
    std::string path = PathOf(rank);
    ++stats_.operations;
    if (rng_.NextBool(config_.write_fraction)) {
      ++stats_.writes;
      Status status = vfs::WriteFileAt(fs, path, contents);
      if (!status.ok()) {
        ++stats_.failures;
      }
    } else {
      ++stats_.reads;
      auto result = vfs::OpenReadClose(fs, path);
      if (!result.ok()) {
        ++stats_.failures;
      }
    }
  }
  return OkStatus();
}

}  // namespace ficus::sim
