#include "src/sim/workload.h"

#include "src/vfs/path_ops.h"

namespace ficus::sim {

std::string Workload::PathOf(int rank) const {
  int dir = rank / config_.files_per_directory;
  int file = rank % config_.files_per_directory;
  return "d" + std::to_string(dir) + "/f" + std::to_string(file);
}

Status Workload::Populate(vfs::Vfs* fs) {
  std::string contents(static_cast<size_t>(config_.file_size_bytes), 'x');
  for (int dir = 0; dir < config_.directories; ++dir) {
    FICUS_RETURN_IF_ERROR(vfs::MkdirAll(fs, "d" + std::to_string(dir)));
  }
  for (int rank = 0; rank < file_count(); ++rank) {
    FICUS_RETURN_IF_ERROR(vfs::WriteFileAt(fs, PathOf(rank), contents));
  }
  return OkStatus();
}

namespace {

// True for failures that mean the mount itself died under the run (host
// crash, broken device) rather than a workload-visible outcome like a
// missing file, a conflict, or an unreachable replica.
bool IsFatalToRun(const Status& status) {
  return status.code() == ErrorCode::kIo || status.code() == ErrorCode::kInternal;
}

}  // namespace

Status Workload::Run(vfs::Vfs* fs, int ops) {
  // The run accumulates into a local delta that is committed to stats_ on
  // every exit path. Without this, a run cut short by a host crash dropped
  // its last-tick operations from WorkloadStats, so assertions that pair
  // Crash() with stats were racy against where the run happened to stop.
  WorkloadStats delta;
  struct CommitOnExit {
    WorkloadStats& total;
    const WorkloadStats& delta;
    ~CommitOnExit() {
      total.operations += delta.operations;
      total.reads += delta.reads;
      total.writes += delta.writes;
      total.failures += delta.failures;
    }
  } commit{stats_, delta};

  std::string contents(static_cast<size_t>(config_.file_size_bytes), 'y');
  for (int i = 0; i < ops; ++i) {
    int rank = static_cast<int>(
        rng_.NextZipf(static_cast<uint64_t>(file_count()), config_.zipf_skew));
    std::string path = PathOf(rank);
    ++delta.operations;
    Status status = OkStatus();
    if (rng_.NextBool(config_.write_fraction)) {
      ++delta.writes;
      status = vfs::WriteFileAt(fs, path, contents);
    } else {
      ++delta.reads;
      status = vfs::OpenReadClose(fs, path).status();
    }
    if (!status.ok()) {
      ++delta.failures;
      if (IsFatalToRun(status)) {
        return status;  // the committed delta still counts this attempt
      }
    }
  }
  return OkStatus();
}

}  // namespace ficus::sim
