#include "src/net/network.h"

#include <algorithm>

namespace ficus::net {

namespace {
const std::string kUnknownHostName = "<unknown>";

std::pair<HostId, HostId> OrderedPair(HostId a, HostId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

Network::Network(SimClock* clock, MetricRegistry* metrics)
    : clock_(clock), registry_(metrics != nullptr ? metrics : &owned_registry_) {
  stats_.rpcs_sent = registry_->counter("net.rpcs_sent");
  stats_.rpcs_failed = registry_->counter("net.rpcs_failed");
  stats_.rpc_bytes = registry_->counter("net.rpc_bytes");
  stats_.datagrams_sent = registry_->counter("net.datagrams_sent");
  stats_.datagrams_dropped = registry_->counter("net.datagrams_dropped");
  stats_.datagram_bytes = registry_->counter("net.datagram_bytes");
}

NetworkStats Network::stats() const {
  NetworkStats out;
  out.rpcs_sent = stats_.rpcs_sent->value();
  out.rpcs_failed = stats_.rpcs_failed->value();
  out.rpc_bytes = stats_.rpc_bytes->value();
  out.datagrams_sent = stats_.datagrams_sent->value();
  out.datagrams_dropped = stats_.datagrams_dropped->value();
  out.datagram_bytes = stats_.datagram_bytes->value();
  return out;
}

void Network::ResetStats() {
  stats_.rpcs_sent->Reset();
  stats_.rpcs_failed->Reset();
  stats_.rpc_bytes->Reset();
  stats_.datagrams_sent->Reset();
  stats_.datagrams_dropped->Reset();
  stats_.datagram_bytes->Reset();
}

HostId Network::AddHost(const std::string& name) {
  HostId id = next_id_++;
  hosts_[id].name = name;
  return id;
}

HostPort* Network::port(HostId host) {
  auto it = hosts_.find(host);
  return it != hosts_.end() ? &it->second.port : nullptr;
}

const std::string& Network::HostName(HostId host) const {
  auto it = hosts_.find(host);
  return it != hosts_.end() ? it->second.name : kUnknownHostName;
}

std::vector<HostId> Network::Hosts() const {
  std::vector<HostId> out;
  out.reserve(hosts_.size());
  for (const auto& [id, host] : hosts_) {
    out.push_back(id);
  }
  return out;
}

void Network::DisconnectPair(HostId a, HostId b) {
  if (a != b) {
    severed_.insert(OrderedPair(a, b));
  }
}

void Network::ConnectPair(HostId a, HostId b) { severed_.erase(OrderedPair(a, b)); }

void Network::Partition(const std::vector<std::vector<HostId>>& groups) {
  severed_.clear();
  // Map each host to its group; hosts absent from all groups are isolated.
  std::map<HostId, size_t> group_of;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (HostId h : groups[g]) {
      group_of[h] = g;
    }
  }
  std::vector<HostId> all = Hosts();
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      auto gi = group_of.find(all[i]);
      auto gj = group_of.find(all[j]);
      bool same = gi != group_of.end() && gj != group_of.end() && gi->second == gj->second;
      if (!same) {
        severed_.insert(OrderedPair(all[i], all[j]));
      }
    }
  }
}

void Network::Heal() { severed_.clear(); }

void Network::SetHostUp(HostId host, bool up) {
  auto it = hosts_.find(host);
  if (it != hosts_.end()) {
    it->second.up = up;
  }
}

bool Network::HostUp(HostId host) const {
  auto it = hosts_.find(host);
  return it != hosts_.end() && it->second.up;
}

bool Network::Reachable(HostId from, HostId to) const {
  if (!HostUp(from) || !HostUp(to)) {
    return false;
  }
  if (from == to) {
    return true;
  }
  return severed_.count(OrderedPair(from, to)) == 0;
}

StatusOr<Payload> Network::Rpc(HostId from, HostId to, const std::string& service,
                               const Payload& request) {
  if (!Reachable(from, to)) {
    stats_.rpcs_failed->Increment();
    return UnreachableError("no route from " + HostName(from) + " to " + HostName(to));
  }
  auto it = hosts_.find(to);
  if (it == hosts_.end()) {
    stats_.rpcs_failed->Increment();
    return UnreachableError("destination host does not exist");
  }
  auto handler = it->second.port.rpc_services_.find(service);
  if (handler == it->second.port.rpc_services_.end()) {
    stats_.rpcs_failed->Increment();
    return NotFoundError("service not registered: " + service);
  }
  stats_.rpcs_sent->Increment();
  stats_.rpc_bytes->Add(request.size());
  if (clock_ != nullptr && from != to) {
    clock_->Advance(rpc_latency_);
  }
  StatusOr<Payload> response = handler->second(from, request);
  if (response.ok()) {
    stats_.rpc_bytes->Add(response.value().size());
  }
  return response;
}

size_t Network::Multicast(HostId from, const std::vector<HostId>& destinations,
                          const std::string& channel, const Payload& payload) {
  size_t delivered = 0;
  for (HostId to : destinations) {
    if (to == from) {
      continue;
    }
    if (!Reachable(from, to)) {
      stats_.datagrams_dropped->Increment();
      continue;
    }
    auto it = hosts_.find(to);
    if (it == hosts_.end()) {
      stats_.datagrams_dropped->Increment();
      continue;
    }
    auto handler = it->second.port.datagram_channels_.find(channel);
    if (handler == it->second.port.datagram_channels_.end()) {
      stats_.datagrams_dropped->Increment();
      continue;
    }
    stats_.datagrams_sent->Increment();
    stats_.datagram_bytes->Add(payload.size());
    handler->second(from, payload);
    ++delivered;
  }
  return delivered;
}

}  // namespace ficus::net
