#include "src/net/network.h"

#include <algorithm>

namespace ficus::net {

namespace {
const std::string kUnknownHostName = "<unknown>";

std::pair<HostId, HostId> OrderedPair(HostId a, HostId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

Network::Network(SimClock* clock, MetricRegistry* metrics)
    : clock_(clock), registry_(metrics != nullptr ? metrics : &owned_registry_) {
  stats_.rpcs_sent = registry_->counter("net.rpcs_sent");
  stats_.rpcs_failed = registry_->counter("net.rpcs_failed");
  stats_.rpc_bytes = registry_->counter("net.rpc_bytes");
  stats_.datagrams_sent = registry_->counter("net.datagrams_sent");
  stats_.datagrams_dropped = registry_->counter("net.datagrams_dropped");
  stats_.datagram_bytes = registry_->counter("net.datagram_bytes");
  stats_.fault_rpc_request_drops = registry_->counter("net.faults.rpc_request_drops");
  stats_.fault_rpc_response_drops = registry_->counter("net.faults.rpc_response_drops");
  stats_.fault_datagram_drops = registry_->counter("net.faults.datagram_drops");
  stats_.fault_datagram_dups = registry_->counter("net.faults.datagram_dups");
  stats_.fault_datagram_reorders = registry_->counter("net.faults.datagram_reorders");
  stats_.fault_scheduled_blocks = registry_->counter("net.faults.scheduled_blocks");
}

NetworkStats Network::stats() const {
  NetworkStats out;
  out.rpcs_sent = stats_.rpcs_sent->value();
  out.rpcs_failed = stats_.rpcs_failed->value();
  out.rpc_bytes = stats_.rpc_bytes->value();
  out.datagrams_sent = stats_.datagrams_sent->value();
  out.datagrams_dropped = stats_.datagrams_dropped->value();
  out.datagram_bytes = stats_.datagram_bytes->value();
  out.fault_rpc_request_drops = stats_.fault_rpc_request_drops->value();
  out.fault_rpc_response_drops = stats_.fault_rpc_response_drops->value();
  out.fault_datagram_drops = stats_.fault_datagram_drops->value();
  out.fault_datagram_dups = stats_.fault_datagram_dups->value();
  out.fault_datagram_reorders = stats_.fault_datagram_reorders->value();
  out.fault_scheduled_blocks = stats_.fault_scheduled_blocks->value();
  return out;
}

void Network::ResetStats() {
  stats_.rpcs_sent->Reset();
  stats_.rpcs_failed->Reset();
  stats_.rpc_bytes->Reset();
  stats_.datagrams_sent->Reset();
  stats_.datagrams_dropped->Reset();
  stats_.datagram_bytes->Reset();
  stats_.fault_rpc_request_drops->Reset();
  stats_.fault_rpc_response_drops->Reset();
  stats_.fault_datagram_drops->Reset();
  stats_.fault_datagram_dups->Reset();
  stats_.fault_datagram_reorders->Reset();
  stats_.fault_scheduled_blocks->Reset();
}

FaultPlan& Network::InstallFaultPlan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_ = std::make_unique<FaultPlan>(std::move(plan));
  return *faults_;
}

void Network::ClearFaultPlan() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.reset();
}

HostId Network::AddHost(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  HostId id = next_id_++;
  hosts_[id].name = name;
  return id;
}

HostPort* Network::port(HostId host) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hosts_.find(host);
  return it != hosts_.end() ? &it->second.port : nullptr;
}

const std::string& Network::HostName(HostId host) const {
  std::lock_guard<std::mutex> lock(mu_);
  return HostNameLocked(host);
}

const std::string& Network::HostNameLocked(HostId host) const {
  auto it = hosts_.find(host);
  return it != hosts_.end() ? it->second.name : kUnknownHostName;
}

std::vector<HostId> Network::Hosts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HostId> out;
  out.reserve(hosts_.size());
  for (const auto& [id, host] : hosts_) {
    out.push_back(id);
  }
  return out;
}

void Network::DisconnectPair(HostId a, HostId b) {
  std::lock_guard<std::mutex> lock(mu_);
  if (a != b) {
    severed_.insert(OrderedPair(a, b));
  }
}

void Network::ConnectPair(HostId a, HostId b) {
  std::lock_guard<std::mutex> lock(mu_);
  severed_.erase(OrderedPair(a, b));
}

void Network::Partition(const std::vector<std::vector<HostId>>& groups) {
  std::lock_guard<std::mutex> lock(mu_);
  severed_.clear();
  // Map each host to its group; hosts absent from all groups are isolated.
  std::map<HostId, size_t> group_of;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (HostId h : groups[g]) {
      group_of[h] = g;
    }
  }
  std::vector<HostId> all;
  all.reserve(hosts_.size());
  for (const auto& [id, host] : hosts_) {
    all.push_back(id);
  }
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      auto gi = group_of.find(all[i]);
      auto gj = group_of.find(all[j]);
      bool same = gi != group_of.end() && gj != group_of.end() && gi->second == gj->second;
      if (!same) {
        severed_.insert(OrderedPair(all[i], all[j]));
      }
    }
  }
}

void Network::Heal() {
  std::lock_guard<std::mutex> lock(mu_);
  severed_.clear();
}

void Network::SetHostUp(HostId host, bool up) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hosts_.find(host);
  if (it != hosts_.end()) {
    it->second.up = up;
  }
}

bool Network::HostUp(HostId host) const {
  std::lock_guard<std::mutex> lock(mu_);
  return HostUpLocked(host);
}

bool Network::HostUpLocked(HostId host) const {
  auto it = hosts_.find(host);
  return it != hosts_.end() && it->second.up;
}

bool Network::ScheduledDownLocked(HostId a, HostId b) const {
  return faults_ != nullptr && faults_->ScheduledDown(a, b, Now());
}

bool Network::Reachable(HostId from, HostId to) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ReachableLocked(from, to);
}

bool Network::ReachableLocked(HostId from, HostId to) const {
  if (!HostUpLocked(from) || !HostUpLocked(to)) {
    return false;
  }
  if (from == to) {
    return true;
  }
  if (ScheduledDownLocked(from, to)) {
    return false;
  }
  return severed_.count(OrderedPair(from, to)) == 0;
}

SimTime Network::SampleLatencyLocked(HostId a, HostId b) {
  if (faults_ == nullptr) {
    return rpc_latency_;
  }
  const LatencyModel& latency = faults_->LinkFor(a, b).latency;
  SimTime sample = latency.base;
  if (latency.jitter != 0) {
    sample += faults_->rng().NextBelow(latency.jitter + 1);
  }
  return sample;
}

StatusOr<Payload> Network::Rpc(HostId from, HostId to, const std::string& service,
                               const Payload& request, SimTime timeout) {
  // Phase 1 (under the state lock): routing, fault draws, and latency
  // accounting. The handler is copied out so phase 2 can run it without
  // holding the lock — a handler runs a whole vnode stack and may itself
  // use the network.
  HostPort::RpcHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ReachableLocked(from, to)) {
      if (HostUpLocked(from) && HostUpLocked(to) &&
          severed_.count(OrderedPair(from, to)) == 0 && ScheduledDownLocked(from, to)) {
        stats_.fault_scheduled_blocks->Increment();
      }
      stats_.rpcs_failed->Increment();
      return UnreachableError("no route from " + HostNameLocked(from) + " to " +
                              HostNameLocked(to));
    }
    auto it = hosts_.find(to);
    if (it == hosts_.end()) {
      stats_.rpcs_failed->Increment();
      return UnreachableError("destination host does not exist");
    }
    auto found = it->second.port.rpc_services_.find(service);
    if (found == it->second.port.rpc_services_.end()) {
      stats_.rpcs_failed->Increment();
      return NotFoundError("service not registered: " + service);
    }
    const bool remote = from != to;
    const LinkFaults* faults =
        (faults_ != nullptr && remote) ? &faults_->LinkFor(from, to) : nullptr;
    // The caller's patience: how long it waits before declaring a lost
    // message a timeout.
    auto wait_out_timeout = [&]() {
      if (clock_ != nullptr) {
        clock_->Advance(timeout != 0 ? timeout : SampleLatencyLocked(from, to));
      }
    };
    if (faults != nullptr && faults_->rng().NextBool(faults->drop)) {
      stats_.fault_rpc_request_drops->Increment();
      stats_.rpcs_failed->Increment();
      wait_out_timeout();
      return TimedOutError("rpc request to " + HostNameLocked(to) + " lost (" + service +
                           ")");
    }
    stats_.rpcs_sent->Increment();
    stats_.rpc_bytes->Add(request.size());
    if (clock_ != nullptr && remote) {
      clock_->Advance(SampleLatencyLocked(from, to));
    }
    handler = found->second;
  }
  StatusOr<Payload> response = handler(from, request);
  // Phase 3: the response's fate, again under the lock.
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool remote = from != to;
    const LinkFaults* faults =
        (faults_ != nullptr && remote) ? &faults_->LinkFor(from, to) : nullptr;
    if (faults != nullptr && faults_->rng().NextBool(faults->drop)) {
      // The handler executed but the reply never arrived: the at-least-once
      // hazard every NFS retry loop must tolerate.
      stats_.fault_rpc_response_drops->Increment();
      stats_.rpcs_failed->Increment();
      if (clock_ != nullptr) {
        clock_->Advance(timeout != 0 ? timeout : SampleLatencyLocked(from, to));
      }
      return TimedOutError("rpc response from " + HostNameLocked(to) + " lost (" + service +
                           ")");
    }
    if (response.ok()) {
      stats_.rpc_bytes->Add(response.value().size());
    }
  }
  return response;
}

bool Network::DeliverDatagram(HostId from, HostId to, const std::string& channel,
                              const Payload& payload) {
  HostPort::DatagramHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = hosts_.find(to);
    if (it == hosts_.end()) {
      stats_.datagrams_dropped->Increment();
      return false;
    }
    auto found = it->second.port.datagram_channels_.find(channel);
    if (found == it->second.port.datagram_channels_.end()) {
      stats_.datagrams_dropped->Increment();
      return false;
    }
    stats_.datagrams_sent->Increment();
    stats_.datagram_bytes->Add(payload.size());
    handler = found->second;
  }
  // Invoked without the lock: the handler files into the destination's
  // new-version cache (a leaf lock) and may kick a propagation worker.
  handler(from, payload);
  return true;
}

size_t Network::Multicast(HostId from, const std::vector<HostId>& destinations,
                          const std::string& channel, const Payload& payload) {
  size_t delivered = 0;
  for (HostId to : destinations) {
    if (to == from) {
      continue;
    }
    // Per-destination verdict under the lock; deliveries happen outside it.
    enum class Verdict { kDrop, kDefer, kDeliver };
    Verdict verdict;
    bool duplicate = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!ReachableLocked(from, to)) {
        stats_.datagrams_dropped->Increment();
        continue;
      }
      const LinkFaults* faults = faults_ != nullptr ? &faults_->LinkFor(from, to) : nullptr;
      if (faults != nullptr && faults_->rng().NextBool(faults->drop)) {
        stats_.fault_datagram_drops->Increment();
        verdict = Verdict::kDrop;
      } else if (faults != nullptr && faults_->rng().NextBool(faults->reorder)) {
        // Held back until later traffic reaches this destination (or an
        // explicit flush) — delivered out of order, not lost.
        stats_.fault_datagram_reorders->Increment();
        deferred_.push_back(DeferredDatagram{from, to, channel, payload});
        verdict = Verdict::kDefer;
      } else {
        verdict = Verdict::kDeliver;
        if (faults != nullptr && faults_->rng().NextBool(faults->duplicate)) {
          stats_.fault_datagram_dups->Increment();
          duplicate = true;
        }
      }
    }
    if (verdict != Verdict::kDeliver) {
      continue;
    }
    if (DeliverDatagram(from, to, channel, payload)) {
      ++delivered;
    }
    if (duplicate) {
      DeliverDatagram(from, to, channel, payload);
    }
    // The new datagram has arrived; anything deferred for this destination
    // now lands behind it, completing the reorder.
    delivered += FlushDeferredFor(to);
  }
  return delivered;
}

size_t Network::FlushDeferredFor(HostId to) {
  std::vector<DeferredDatagram> flush;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<DeferredDatagram> keep;
    for (auto& d : deferred_) {
      if (to == kInvalidHost || d.to == to) {
        flush.push_back(std::move(d));
      } else {
        keep.push_back(std::move(d));
      }
    }
    deferred_ = std::move(keep);
  }
  size_t delivered = 0;
  for (const auto& d : flush) {
    if (!Reachable(d.from, d.to)) {
      stats_.datagrams_dropped->Increment();
      continue;
    }
    if (DeliverDatagram(d.from, d.to, d.channel, d.payload)) {
      ++delivered;
    }
  }
  return delivered;
}

size_t Network::FlushDeferredDatagrams() { return FlushDeferredFor(kInvalidHost); }

}  // namespace ficus::net
