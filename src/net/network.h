// Simulated network connecting Ficus hosts. Connectivity is a symmetric
// reachability relation the test/benchmark scripts partition and heal at
// will — "partial operation is the normal, not exceptional, status"
// (paper section 1). Provides the two primitives Ficus needs:
//   * synchronous unicast RPC (what the NFS transport layer rides on), and
//   * best-effort multicast datagrams (update notifications, section 3.2):
//     delivered immediately to reachable hosts, silently dropped for
//     unreachable ones, never retried.
#ifndef FICUS_SRC_NET_NETWORK_H_
#define FICUS_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/status.h"

namespace ficus::net {

using HostId = uint32_t;
constexpr HostId kInvalidHost = 0;

// Opaque message payload.
using Payload = std::vector<uint8_t>;

// Per-network traffic counters. Snapshot of the `net.*` cells in the
// network's MetricRegistry, kept so existing callers read plain fields.
struct NetworkStats {
  uint64_t rpcs_sent = 0;
  uint64_t rpcs_failed = 0;       // unreachable destination
  uint64_t rpc_bytes = 0;         // request + response payload bytes
  uint64_t datagrams_sent = 0;    // per-destination count
  uint64_t datagrams_dropped = 0; // destinations unreachable at send time
  uint64_t datagram_bytes = 0;
};

// A host's attachment to the network: services it exposes.
//   RPC: service name -> handler(request) -> response or error.
//   Datagram: channel name -> handler(sender, payload).
class HostPort {
 public:
  using RpcHandler = std::function<StatusOr<Payload>(HostId sender, const Payload& request)>;
  using DatagramHandler = std::function<void(HostId sender, const Payload& payload)>;

  void RegisterRpcService(const std::string& service, RpcHandler handler) {
    rpc_services_[service] = std::move(handler);
  }
  void RegisterDatagramChannel(const std::string& channel, DatagramHandler handler) {
    datagram_channels_[channel] = std::move(handler);
  }

 private:
  friend class Network;
  std::map<std::string, RpcHandler> rpc_services_;
  std::map<std::string, DatagramHandler> datagram_channels_;
};

class Network {
 public:
  // clock may be null; latency accounting then has no effect. `metrics`
  // (borrowed, optional) receives the `net.*` traffic counters; without
  // one the network keeps them in a private registry.
  explicit Network(SimClock* clock = nullptr, MetricRegistry* metrics = nullptr);

  // Adds a host and returns its id (ids start at 1). All existing hosts are
  // reachable from the new one until partitioned.
  HostId AddHost(const std::string& name);

  HostPort* port(HostId host);
  const std::string& HostName(HostId host) const;
  std::vector<HostId> Hosts() const;

  // --- Connectivity control ---
  // Severs the (symmetric) link between two hosts.
  void DisconnectPair(HostId a, HostId b);
  void ConnectPair(HostId a, HostId b);
  // Splits hosts into groups; hosts in different groups cannot communicate,
  // hosts in the same group can. Clears previous pairwise state.
  void Partition(const std::vector<std::vector<HostId>>& groups);
  // Restores full connectivity.
  void Heal();
  // Takes a host entirely offline / online (models a crashed host).
  void SetHostUp(HostId host, bool up);
  bool HostUp(HostId host) const;

  bool Reachable(HostId from, HostId to) const;

  // --- Messaging ---
  // Synchronous RPC: runs the destination's handler inline. Fails with
  // kUnreachable when partitioned or either host is down, kNotFound when
  // the service is not registered. Advances the simulated clock by
  // rpc_latency per call when a clock is attached.
  StatusOr<Payload> Rpc(HostId from, HostId to, const std::string& service,
                        const Payload& request);

  // Best-effort multicast: delivers to each reachable destination's channel
  // handler, drops the rest. Self-delivery is skipped. Returns the number
  // of hosts actually reached.
  size_t Multicast(HostId from, const std::vector<HostId>& destinations,
                   const std::string& channel, const Payload& payload);

  NetworkStats stats() const;
  void ResetStats();

  MetricRegistry* metrics() { return registry_; }

  void set_rpc_latency(SimTime latency) { rpc_latency_ = latency; }

 private:
  struct Host {
    std::string name;
    bool up = true;
    HostPort port;
  };

  // Registry-backed counter cells, resolved once at construction.
  struct StatCells {
    Counter* rpcs_sent;
    Counter* rpcs_failed;
    Counter* rpc_bytes;
    Counter* datagrams_sent;
    Counter* datagrams_dropped;
    Counter* datagram_bytes;
  };

  SimClock* clock_;
  std::map<HostId, Host> hosts_;
  HostId next_id_ = 1;
  // Pairs (a < b) that are explicitly severed.
  std::set<std::pair<HostId, HostId>> severed_;
  MetricRegistry owned_registry_;
  MetricRegistry* registry_;
  StatCells stats_;
  SimTime rpc_latency_ = kMillisecond;
};

}  // namespace ficus::net

#endif  // FICUS_SRC_NET_NETWORK_H_
