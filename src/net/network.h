// Simulated network connecting Ficus hosts. Connectivity is a symmetric
// reachability relation the test/benchmark scripts partition and heal at
// will — "partial operation is the normal, not exceptional, status"
// (paper section 1). Provides the two primitives Ficus needs:
//   * synchronous unicast RPC (what the NFS transport layer rides on), and
//   * best-effort multicast datagrams (update notifications, section 3.2):
//     delivered immediately to reachable hosts, silently dropped for
//     unreachable ones, never retried.
// An installed FaultPlan (src/net/fault.h) layers realistic misbehaviour
// on top: message loss, latency jitter, datagram duplication/reordering,
// and scripted flaps/partitions — all seeded and deterministic.
//
// Thread safety: one mutex guards the host table, connectivity state,
// fault plan (including its rng), and the deferred-datagram queue.
// Handlers — RPC services and datagram channels — are always invoked
// with the lock RELEASED: a handler runs an entire vnode stack and may
// itself send on this network. Under the deterministic runtime all of
// this happens on one thread, so fault-rng draw order (and therefore
// every seeded test) is unchanged.
#ifndef FICUS_SRC_NET_NETWORK_H_
#define FICUS_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/net/fault.h"

namespace ficus::net {

constexpr HostId kInvalidHost = 0;

// Opaque message payload.
using Payload = std::vector<uint8_t>;

// Per-network traffic counters. Snapshot of the `net.*` cells in the
// network's MetricRegistry, kept so existing callers read plain fields.
struct NetworkStats {
  uint64_t rpcs_sent = 0;
  uint64_t rpcs_failed = 0;       // unreachable destination
  uint64_t rpc_bytes = 0;         // request + response payload bytes
  uint64_t datagrams_sent = 0;    // per-destination count
  uint64_t datagrams_dropped = 0; // destinations unreachable at send time
  uint64_t datagram_bytes = 0;
  // Injected-fault effects (`net.faults.*`), all zero without a FaultPlan.
  uint64_t fault_rpc_request_drops = 0;   // request lost; handler never ran
  uint64_t fault_rpc_response_drops = 0;  // response lost; handler DID run
  uint64_t fault_datagram_drops = 0;
  uint64_t fault_datagram_dups = 0;
  uint64_t fault_datagram_reorders = 0;
  uint64_t fault_scheduled_blocks = 0;    // sends blocked by the fault schedule
};

// A host's attachment to the network: services it exposes.
//   RPC: service name -> handler(request) -> response or error.
//   Datagram: channel name -> handler(sender, payload).
class HostPort {
 public:
  using RpcHandler = std::function<StatusOr<Payload>(HostId sender, const Payload& request)>;
  using DatagramHandler = std::function<void(HostId sender, const Payload& payload)>;

  void RegisterRpcService(const std::string& service, RpcHandler handler) {
    rpc_services_[service] = std::move(handler);
  }
  void RegisterDatagramChannel(const std::string& channel, DatagramHandler handler) {
    datagram_channels_[channel] = std::move(handler);
  }

 private:
  friend class Network;
  std::map<std::string, RpcHandler> rpc_services_;
  std::map<std::string, DatagramHandler> datagram_channels_;
};

class Network {
 public:
  // clock may be null; latency accounting then has no effect. `metrics`
  // (borrowed, optional) receives the `net.*` traffic counters; without
  // one the network keeps them in a private registry.
  explicit Network(SimClock* clock = nullptr, MetricRegistry* metrics = nullptr);

  // Adds a host and returns its id (ids start at 1). All existing hosts are
  // reachable from the new one until partitioned.
  HostId AddHost(const std::string& name);

  HostPort* port(HostId host);
  const std::string& HostName(HostId host) const;
  std::vector<HostId> Hosts() const;

  // --- Connectivity control ---
  // Severs the (symmetric) link between two hosts.
  void DisconnectPair(HostId a, HostId b);
  void ConnectPair(HostId a, HostId b);
  // Splits hosts into groups; hosts in different groups cannot communicate,
  // hosts in the same group can. Clears previous pairwise state.
  void Partition(const std::vector<std::vector<HostId>>& groups);
  // Restores full connectivity.
  void Heal();
  // Takes a host entirely offline / online (models a crashed host).
  void SetHostUp(HostId host, bool up);
  bool HostUp(HostId host) const;

  bool Reachable(HostId from, HostId to) const;

  // --- Fault injection ---
  // Installs `plan` (replacing any previous one) and returns it for
  // further scripting; the network consults it on every send. Without a
  // plan, delivery is perfect: fixed latency, no loss.
  FaultPlan& InstallFaultPlan(FaultPlan plan);
  void ClearFaultPlan();
  FaultPlan* fault_plan() { return faults_.get(); }

  // --- Messaging ---
  // Synchronous RPC: runs the destination's handler inline. Fails with
  // kUnreachable when partitioned or either host is down, kNotFound when
  // the service is not registered. Advances the simulated clock by the
  // link latency per call when a clock is attached. Under an installed
  // FaultPlan a lost request or response surfaces as kTimedOut after
  // `timeout` simulated microseconds (the caller's patience; 0 waits one
  // link latency) — a lost *response* means the handler already ran.
  StatusOr<Payload> Rpc(HostId from, HostId to, const std::string& service,
                        const Payload& request, SimTime timeout = 0);

  // Best-effort multicast: delivers to each reachable destination's channel
  // handler, drops the rest. Self-delivery is skipped. Returns the number
  // of hosts actually reached. An installed FaultPlan may additionally
  // drop, duplicate, or reorder deliveries (a reordered datagram is held
  // back until later traffic reaches the same destination, or until
  // FlushDeferredDatagrams()).
  size_t Multicast(HostId from, const std::vector<HostId>& destinations,
                   const std::string& channel, const Payload& payload);

  // Delivers every datagram held back by fault reordering (subject to
  // current reachability). Returns the number delivered. The simulation
  // pumps call this so reordered notifications are late, not lost.
  size_t FlushDeferredDatagrams();

  NetworkStats stats() const;
  void ResetStats();

  MetricRegistry* metrics() { return registry_; }

  // The clock messages are timed against; null in clockless tests. Exposed
  // so transports can model waiting (retry backoff) on the same timeline.
  SimClock* sim_clock() { return clock_; }

  void set_rpc_latency(SimTime latency) { rpc_latency_ = latency; }

 private:
  struct Host {
    std::string name;
    bool up = true;
    HostPort port;
  };

  // Registry-backed counter cells, resolved once at construction.
  struct StatCells {
    Counter* rpcs_sent;
    Counter* rpcs_failed;
    Counter* rpc_bytes;
    Counter* datagrams_sent;
    Counter* datagrams_dropped;
    Counter* datagram_bytes;
    Counter* fault_rpc_request_drops;
    Counter* fault_rpc_response_drops;
    Counter* fault_datagram_drops;
    Counter* fault_datagram_dups;
    Counter* fault_datagram_reorders;
    Counter* fault_scheduled_blocks;
  };

  // A datagram held back by fault reordering.
  struct DeferredDatagram {
    HostId from;
    HostId to;
    std::string channel;
    Payload payload;
  };

  SimTime Now() const { return clock_ != nullptr ? clock_->Now() : 0; }
  // Lock-free-context variants of the public queries, for use while mu_
  // is already held (std::mutex is not recursive).
  bool HostUpLocked(HostId host) const;
  bool ReachableLocked(HostId from, HostId to) const;
  const std::string& HostNameLocked(HostId host) const;
  // The fault schedule's verdict on a<->b right now.
  bool ScheduledDownLocked(HostId a, HostId b) const;
  // Samples the one-way latency for a message on a<->b (draws from the
  // fault rng, hence "locked").
  SimTime SampleLatencyLocked(HostId a, HostId b);
  // Hands `payload` to `to`'s handler for `channel` if one is registered.
  bool DeliverDatagram(HostId from, HostId to, const std::string& channel,
                       const Payload& payload);
  // Delivers deferred datagrams bound for `to` (after newer traffic — the
  // reorder). `to` = kInvalidHost flushes every destination.
  size_t FlushDeferredFor(HostId to);

  SimClock* clock_;
  mutable std::mutex mu_;
  std::map<HostId, Host> hosts_;
  HostId next_id_ = 1;
  // Pairs (a < b) that are explicitly severed.
  std::set<std::pair<HostId, HostId>> severed_;
  MetricRegistry owned_registry_;
  MetricRegistry* registry_;
  StatCells stats_;
  SimTime rpc_latency_ = kMillisecond;
  std::unique_ptr<FaultPlan> faults_;
  std::vector<DeferredDatagram> deferred_;
};

}  // namespace ficus::net

#endif  // FICUS_SRC_NET_NETWORK_H_
