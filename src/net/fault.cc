#include "src/net/fault.h"

#include <algorithm>

namespace ficus::net {

namespace {
std::pair<HostId, HostId> OrderedPair(HostId a, HostId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

FaultPlan::FaultPlan(uint64_t seed) : seed_(seed), rng_(seed) {}

void FaultPlan::SetLinkFaults(HostId a, HostId b, const LinkFaults& faults) {
  links_[OrderedPair(a, b)] = faults;
}

const LinkFaults& FaultPlan::LinkFor(HostId a, HostId b) const {
  auto it = links_.find(OrderedPair(a, b));
  return it != links_.end() ? it->second : default_link_;
}

void FaultPlan::AddFlap(HostId a, HostId b, SimTime first_down, SimTime down_for,
                        SimTime period) {
  auto [lo, hi] = OrderedPair(a, b);
  flaps_.push_back(Flap{lo, hi, first_down, down_for, period});
}

void FaultPlan::SchedulePartition(SimTime at, std::vector<std::vector<HostId>> groups) {
  PartitionEvent event;
  event.at = at;
  event.heal = false;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (HostId h : groups[g]) {
      event.group_of[h] = g;
    }
  }
  partition_events_.push_back(std::move(event));
  std::stable_sort(partition_events_.begin(), partition_events_.end(),
                   [](const PartitionEvent& x, const PartitionEvent& y) { return x.at < y.at; });
}

void FaultPlan::ScheduleHeal(SimTime at) {
  PartitionEvent event;
  event.at = at;
  event.heal = true;
  partition_events_.push_back(std::move(event));
  std::stable_sort(partition_events_.begin(), partition_events_.end(),
                   [](const PartitionEvent& x, const PartitionEvent& y) { return x.at < y.at; });
}

bool FaultPlan::ScheduledDown(HostId a, HostId b, SimTime now) const {
  if (a == b) {
    return false;  // loopback never faulted
  }
  auto [lo, hi] = OrderedPair(a, b);
  for (const Flap& flap : flaps_) {
    // Stored ordered, so a half-wildcard flap always has flap.a == 0; it
    // must sever every link touching the named host, whichever side of
    // the pair ordering that host lands on.
    bool matches;
    if (flap.a == 0) {
      matches = flap.b == 0 || flap.b == lo || flap.b == hi;
    } else {
      matches = flap.a == lo && flap.b == hi;
    }
    if (!matches || now < flap.first_down) {
      continue;
    }
    SimTime phase = now - flap.first_down;
    if (flap.period != 0) {
      phase %= flap.period;
    }
    if (phase < flap.down_for) {
      return true;
    }
  }
  // The partition state is whatever the last event at or before `now` says.
  const PartitionEvent* current = nullptr;
  for (const PartitionEvent& event : partition_events_) {
    if (event.at > now) {
      break;
    }
    current = &event;
  }
  if (current == nullptr || current->heal) {
    return false;
  }
  auto ga = current->group_of.find(a);
  auto gb = current->group_of.find(b);
  bool same_group =
      ga != current->group_of.end() && gb != current->group_of.end() && ga->second == gb->second;
  return !same_group;
}

FaultPlan FaultPlan::Lossy(uint64_t seed, double drop) {
  FaultPlan plan(seed);
  plan.default_link().drop = drop;
  return plan;
}

FaultPlan FaultPlan::HighLatency(uint64_t seed, SimTime base, SimTime jitter) {
  FaultPlan plan(seed);
  plan.default_link().latency = LatencyModel{base, jitter};
  return plan;
}

FaultPlan FaultPlan::Flapping(uint64_t seed, SimTime period, SimTime down_for) {
  FaultPlan plan(seed);
  plan.default_link().drop = 0.05;
  plan.AddFlap(0, 0, /*first_down=*/period / 2, down_for, period);
  return plan;
}

FaultPlan FaultPlan::Named(const std::string& name, uint64_t seed) {
  if (name == "lossy" || name == "Lossy") {
    return Lossy(seed);
  }
  if (name == "high-latency" || name == "HighLatency") {
    return HighLatency(seed);
  }
  if (name == "flapping" || name == "Flapping") {
    return Flapping(seed);
  }
  return FaultPlan(seed);
}

}  // namespace ficus::net
