// Fault model for the simulated network. The paper's premise is that
// "partial operation is the normal, not exceptional, status" (section 1),
// so the network the replication machinery is tested against must be able
// to misbehave: lose messages, delay them, duplicate and reorder
// datagrams, and take links up and down on a script.
//
// A FaultPlan collects all of that declaratively:
//   * per-link LinkFaults (drop probability, latency distribution,
//     duplication and reordering probabilities), with a default applied
//     to every link that has no explicit override;
//   * a scripted schedule of partitions/heals and per-link flaps, judged
//     purely as a function of SimClock time so the same plan replayed
//     against the same workload yields byte-identical behaviour;
//   * one plan-level seeded Rng (src/common/rng.h) that every
//     probabilistic decision draws from, so a failing CI run is
//     reproducible from the logged seed alone.
//
// The Network consults the installed plan on every Rpc/Multicast; without
// a plan it behaves exactly as before (perfect, instant-ish delivery).
#ifndef FICUS_SRC_NET_FAULT_H_
#define FICUS_SRC_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rng.h"

namespace ficus::net {

using HostId = uint32_t;

// Message latency: base plus uniform jitter in [0, jitter].
struct LatencyModel {
  SimTime base = kMillisecond;
  SimTime jitter = 0;
};

// Fault characteristics of one (symmetric) link.
struct LinkFaults {
  // Probability each message on the link is lost. For synchronous RPC the
  // request and the response are rolled independently — a lost response
  // means the server executed the call but the client times out, the
  // classic at-least-once hazard.
  double drop = 0.0;
  // Probability a datagram is delivered twice (datagrams only).
  double duplicate = 0.0;
  // Probability a datagram is held back and delivered after later traffic
  // to the same destination (datagrams only).
  double reorder = 0.0;
  LatencyModel latency;
};

class FaultPlan {
 public:
  // All randomness in the plan flows from this one seed.
  explicit FaultPlan(uint64_t seed = 1);

  uint64_t seed() const { return seed_; }
  Rng& rng() { return rng_; }

  // --- per-link fault configuration ---
  // The faults applied to links without an explicit override.
  LinkFaults& default_link() { return default_link_; }
  const LinkFaults& default_link() const { return default_link_; }
  void SetLinkFaults(HostId a, HostId b, const LinkFaults& faults);
  // The faults governing messages between `a` and `b` (symmetric).
  const LinkFaults& LinkFor(HostId a, HostId b) const;

  // --- scripted connectivity schedule ---
  // The link between `a` and `b` goes down at `first_down` for `down_for`
  // microseconds; with a nonzero `period` the outage repeats every period
  // (a flapping link). Host id 0 is a wildcard matching every host, so
  // AddFlap(0, 0, ...) flaps the whole network.
  void AddFlap(HostId a, HostId b, SimTime first_down, SimTime down_for,
               SimTime period = 0);
  // From `at` onward (until the next scheduled event) hosts in different
  // groups cannot communicate; hosts absent from every group are isolated.
  void SchedulePartition(SimTime at, std::vector<std::vector<HostId>> groups);
  // From `at` onward the scripted partition (if any) is lifted.
  void ScheduleHeal(SimTime at);

  // True when the schedule (flaps or partitions) severs a<->b at `now`.
  bool ScheduledDown(HostId a, HostId b, SimTime now) const;

  // --- canned plans (the CI fault tiers) ---
  // 20% message loss on every link.
  static FaultPlan Lossy(uint64_t seed, double drop = 0.2);
  // 25ms base latency with 25ms jitter on every link.
  static FaultPlan HighLatency(uint64_t seed, SimTime base = 25 * kMillisecond,
                               SimTime jitter = 25 * kMillisecond);
  // Every link flaps: down `down_for` out of every `period`, plus 5%
  // residual message loss while up.
  static FaultPlan Flapping(uint64_t seed, SimTime period = 500 * kMillisecond,
                            SimTime down_for = 100 * kMillisecond);
  // Resolves a canned plan by name ("lossy", "high-latency", "flapping");
  // unknown names yield a plan with no faults.
  static FaultPlan Named(const std::string& name, uint64_t seed);

 private:
  struct Flap {
    HostId a;  // 0 = any host
    HostId b;
    SimTime first_down;
    SimTime down_for;
    SimTime period;  // 0 = one-shot outage
  };
  struct PartitionEvent {
    SimTime at;
    // Empty = heal. Otherwise group index per host; absent hosts isolated.
    std::map<HostId, size_t> group_of;
    bool heal;
  };

  uint64_t seed_;
  Rng rng_;
  LinkFaults default_link_;
  std::map<std::pair<HostId, HostId>, LinkFaults> links_;
  std::vector<Flap> flaps_;
  std::vector<PartitionEvent> partition_events_;  // sorted by `at`
};

}  // namespace ficus::net

#endif  // FICUS_SRC_NET_FAULT_H_
