// Per-host volume knowledge (paper section 4).
//
// There is no global volume location database ("Ficus does not require a
// replicated volume location database", section 4 footnote): a host knows
// (a) the volume replicas it stores locally, configured like a mount
// table, and (b) the <replica, storage-site> pairs it has learned from
// graft points while translating pathnames. This registry is that
// knowledge, and doubles as the host's ReplicaResolver backing store.
#ifndef FICUS_SRC_VOL_REGISTRY_H_
#define FICUS_SRC_VOL_REGISTRY_H_

#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "src/net/network.h"
#include "src/repl/physical.h"

namespace ficus::vol {

// Thread-safe: propagation workers and NFS service threads resolve
// replicas while the main thread registers/forgets them.
class VolumeRegistry {
 public:
  // Records a locally stored volume replica (borrowed pointer).
  void RegisterLocal(repl::PhysicalLayer* layer, net::HostId self);

  // Records that `replica` of `volume` is managed by the physical layer
  // at `host` (learned from configuration or a graft point).
  void RegisterRemote(const repl::VolumeId& volume, repl::ReplicaId replica, net::HostId host);

  // All replicas this host knows about for a volume, in id order.
  std::vector<repl::ReplicaId> ReplicasOf(const repl::VolumeId& volume) const;

  // The storage site managing one replica.
  std::optional<net::HostId> HostOf(const repl::VolumeId& volume,
                                    repl::ReplicaId replica) const;

  // The locally stored replica of a volume, if any.
  repl::PhysicalLayer* LocalReplica(const repl::VolumeId& volume) const;

  // Every local physical layer (for daemons that pump all of them).
  std::vector<repl::PhysicalLayer*> AllLocal() const;

  // Drops all knowledge of one replica (it was destroyed).
  void ForgetReplica(const repl::VolumeId& volume, repl::ReplicaId replica);

  // Volumes with at least one known replica.
  std::vector<repl::VolumeId> KnownVolumes() const;

 private:
  struct Entry {
    net::HostId host = net::kInvalidHost;
    repl::PhysicalLayer* local = nullptr;  // set when the replica is ours
  };

  mutable std::mutex mu_;
  std::map<repl::VolumeId, std::map<repl::ReplicaId, Entry>> volumes_;
};

}  // namespace ficus::vol

#endif  // FICUS_SRC_VOL_REGISTRY_H_
