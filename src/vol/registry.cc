#include "src/vol/registry.h"

namespace ficus::vol {

void VolumeRegistry::RegisterLocal(repl::PhysicalLayer* layer, net::HostId self) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = volumes_[layer->volume_id()][layer->replica_id()];
  entry.host = self;
  entry.local = layer;
}

void VolumeRegistry::RegisterRemote(const repl::VolumeId& volume, repl::ReplicaId replica,
                                    net::HostId host) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = volumes_[volume][replica];
  if (entry.local != nullptr) {
    return;  // local knowledge is authoritative
  }
  entry.host = host;
}

std::vector<repl::ReplicaId> VolumeRegistry::ReplicasOf(const repl::VolumeId& volume) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<repl::ReplicaId> out;
  auto it = volumes_.find(volume);
  if (it == volumes_.end()) {
    return out;
  }
  out.reserve(it->second.size());
  for (const auto& [replica, entry] : it->second) {
    out.push_back(replica);
  }
  return out;
}

std::optional<net::HostId> VolumeRegistry::HostOf(const repl::VolumeId& volume,
                                                  repl::ReplicaId replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = volumes_.find(volume);
  if (it == volumes_.end()) {
    return std::nullopt;
  }
  auto rit = it->second.find(replica);
  if (rit == it->second.end()) {
    return std::nullopt;
  }
  return rit->second.host;
}

repl::PhysicalLayer* VolumeRegistry::LocalReplica(const repl::VolumeId& volume) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = volumes_.find(volume);
  if (it == volumes_.end()) {
    return nullptr;
  }
  for (const auto& [replica, entry] : it->second) {
    if (entry.local != nullptr) {
      return entry.local;
    }
  }
  return nullptr;
}

std::vector<repl::PhysicalLayer*> VolumeRegistry::AllLocal() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<repl::PhysicalLayer*> out;
  for (const auto& [volume, replicas] : volumes_) {
    for (const auto& [replica, entry] : replicas) {
      if (entry.local != nullptr) {
        out.push_back(entry.local);
      }
    }
  }
  return out;
}

void VolumeRegistry::ForgetReplica(const repl::VolumeId& volume, repl::ReplicaId replica) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = volumes_.find(volume);
  if (it == volumes_.end()) {
    return;
  }
  it->second.erase(replica);
  if (it->second.empty()) {
    volumes_.erase(it);
  }
}

std::vector<repl::VolumeId> VolumeRegistry::KnownVolumes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<repl::VolumeId> out;
  out.reserve(volumes_.size());
  for (const auto& [volume, replicas] : volumes_) {
    out.push_back(volume);
  }
  return out;
}

}  // namespace ficus::vol
