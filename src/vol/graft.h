// Graft points (paper sections 4.3-4.4).
//
// A graft point is "a special kind of directory": it names the volume to
// be transparently grafted at this spot and lists <volume replica,
// storage site address> pairs. The paper's key implementation economy is
// that this replicated data structure is just directory entries — so the
// ordinary Ficus directory reconciliation keeps graft points consistent
// with no special-purpose code ("No special code was needed to maintain
// their consistency", section 7).
//
// Encoding: the graft point directory contains symlinks, one per record:
//   "@volume"        ->  "<allocator>.<volume>"
//   "r<replica-id>"  ->  "<storage site host id>"
// Symlinks are full Ficus files, so creation, propagation, and
// reconciliation all ride the existing machinery.
#ifndef FICUS_SRC_VOL_GRAFT_H_
#define FICUS_SRC_VOL_GRAFT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/net/network.h"
#include "src/repl/logical.h"
#include "src/repl/physical_api.h"

namespace ficus::vol {

struct GraftPointInfo {
  repl::VolumeId volume;
  // <replica, storage site> pairs, one per volume replica.
  std::vector<std::pair<repl::ReplicaId, net::HostId>> replicas;
};

// Creates a graft point named `name` in directory `dir` of the volume
// served by `phys`, populated from `info`. Returns the graft point's
// file-id. The caller is responsible for update notification.
StatusOr<repl::FileId> WriteGraftPoint(repl::PhysicalApi* phys, repl::FileId dir,
                                       std::string_view name, const GraftPointInfo& info);

// Adds one more <replica, site> pair to an existing graft point (the
// number and placement of volume replicas may change dynamically, 4.3).
Status AddGraftReplica(repl::PhysicalApi* phys, repl::FileId graft_point,
                       repl::ReplicaId replica, net::HostId host);

// Removes a <replica, site> record (tombstoned like any directory entry,
// so the removal reconciles to other graft-point replicas).
Status RemoveGraftReplica(repl::PhysicalApi* phys, repl::FileId graft_point,
                          repl::ReplicaId replica);

// Decodes a graft point's records.
StatusOr<GraftPointInfo> ReadGraftPoint(repl::PhysicalApi* phys, repl::FileId graft_point);

// Per-host table of currently grafted volumes. "A graft is implicitly
// maintained as long as a file within the grafted volume replica is being
// used. A graft that is no longer needed is quietly pruned at a later
// time." (section 4.4)
class GraftTable {
 public:
  explicit GraftTable(const Clock* clock) : clock_(clock) {}

  // The logical layer for a grafted volume, or null when not grafted.
  // Touches the graft's last-use stamp.
  repl::LogicalLayer* Find(const repl::VolumeId& volume);

  // Records a new graft (takes ownership of the logical layer). Pinned
  // grafts model explicit mounts (a root volume in the host's "fstab"):
  // Prune() never drops them; unpinned grafts are the dynamic autografts
  // that are "quietly pruned at a later time".
  repl::LogicalLayer* Insert(const repl::VolumeId& volume,
                             std::unique_ptr<repl::LogicalLayer> logical,
                             bool pinned = false);

  // Drops unpinned grafts idle for at least `horizon`. Returns how many
  // were pruned. NOTE: pruning destroys the graft's logical layer, so
  // vnodes obtained through it must not be used afterwards (a kernel
  // implementation would hold a use count; the paper's grafts are
  // "implicitly maintained as long as a file within the grafted volume
  // replica is being used").
  int Prune(SimTime horizon);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return grafts_.size();
  }
  uint64_t grafts_performed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return grafts_performed_;
  }
  uint64_t graft_hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return graft_hits_;
  }

 private:
  struct Graft {
    std::unique_ptr<repl::LogicalLayer> logical;
    SimTime last_use = 0;
    bool pinned = false;
  };

  SimTime Now() const { return clock_ != nullptr ? clock_->Now() : 0; }

  const Clock* clock_;
  mutable std::mutex mu_;
  std::map<repl::VolumeId, Graft> grafts_;
  uint64_t grafts_performed_ = 0;
  uint64_t graft_hits_ = 0;
};

}  // namespace ficus::vol

#endif  // FICUS_SRC_VOL_GRAFT_H_
