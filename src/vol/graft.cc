#include "src/vol/graft.h"

#include <charconv>

namespace ficus::vol {

namespace {

constexpr char kVolumeEntry[] = "@volume";

std::string EncodeVolume(const repl::VolumeId& volume) {
  return std::to_string(volume.allocator) + "." + std::to_string(volume.volume);
}

StatusOr<repl::VolumeId> DecodeVolume(std::string_view text) {
  size_t dot = text.find('.');
  if (dot == std::string_view::npos) {
    return CorruptError("graft point volume record lacks '.'");
  }
  repl::VolumeId volume;
  auto parse = [](std::string_view s, uint32_t& out) -> bool {
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc() && ptr == s.data() + s.size();
  };
  if (!parse(text.substr(0, dot), volume.allocator) ||
      !parse(text.substr(dot + 1), volume.volume)) {
    return CorruptError("unparseable graft point volume record");
  }
  return volume;
}

StatusOr<uint32_t> ParseU32(std::string_view s) {
  uint32_t out = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return CorruptError("unparseable number in graft point record");
  }
  return out;
}

}  // namespace

StatusOr<repl::FileId> WriteGraftPoint(repl::PhysicalApi* phys, repl::FileId dir,
                                       std::string_view name, const GraftPointInfo& info) {
  FICUS_ASSIGN_OR_RETURN(repl::FileId graft,
                         phys->CreateChild(dir, name, repl::FicusFileType::kGraftPoint, 0));
  FICUS_ASSIGN_OR_RETURN(
      repl::FileId volume_link,
      phys->CreateChild(graft, kVolumeEntry, repl::FicusFileType::kSymlink, 0));
  FICUS_RETURN_IF_ERROR(phys->WriteLink(volume_link, EncodeVolume(info.volume)));
  for (const auto& [replica, host] : info.replicas) {
    FICUS_RETURN_IF_ERROR(AddGraftReplica(phys, graft, replica, host));
  }
  return graft;
}

Status AddGraftReplica(repl::PhysicalApi* phys, repl::FileId graft_point,
                       repl::ReplicaId replica, net::HostId host) {
  std::string name = "r" + std::to_string(replica);
  FICUS_ASSIGN_OR_RETURN(repl::FileId link,
                         phys->CreateChild(graft_point, name,
                                           repl::FicusFileType::kSymlink, 0));
  return phys->WriteLink(link, std::to_string(host));
}

Status RemoveGraftReplica(repl::PhysicalApi* phys, repl::FileId graft_point,
                          repl::ReplicaId replica) {
  return phys->RemoveEntry(graft_point, "r" + std::to_string(replica));
}

StatusOr<GraftPointInfo> ReadGraftPoint(repl::PhysicalApi* phys, repl::FileId graft_point) {
  FICUS_ASSIGN_OR_RETURN(std::vector<repl::FicusDirEntry> entries,
                         phys->ReadDirectory(graft_point));
  GraftPointInfo info;
  bool have_volume = false;
  for (const auto& entry : entries) {
    if (!entry.alive || entry.type != repl::FicusFileType::kSymlink) {
      continue;
    }
    FICUS_ASSIGN_OR_RETURN(std::string target, phys->ReadLink(entry.file));
    if (entry.name == kVolumeEntry) {
      FICUS_ASSIGN_OR_RETURN(info.volume, DecodeVolume(target));
      have_volume = true;
    } else if (!entry.name.empty() && entry.name[0] == 'r') {
      FICUS_ASSIGN_OR_RETURN(uint32_t replica, ParseU32(entry.name.substr(1)));
      FICUS_ASSIGN_OR_RETURN(uint32_t host, ParseU32(target));
      info.replicas.emplace_back(replica, host);
    }
  }
  if (!have_volume) {
    return CorruptError("graft point has no @volume record");
  }
  return info;
}

repl::LogicalLayer* GraftTable::Find(const repl::VolumeId& volume) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = grafts_.find(volume);
  if (it == grafts_.end()) {
    return nullptr;
  }
  it->second.last_use = Now();
  ++graft_hits_;
  return it->second.logical.get();
}

repl::LogicalLayer* GraftTable::Insert(const repl::VolumeId& volume,
                                       std::unique_ptr<repl::LogicalLayer> logical,
                                       bool pinned) {
  std::lock_guard<std::mutex> lock(mu_);
  Graft graft;
  graft.logical = std::move(logical);
  graft.last_use = Now();
  graft.pinned = pinned;
  ++grafts_performed_;
  auto [it, inserted] = grafts_.insert_or_assign(volume, std::move(graft));
  return it->second.logical.get();
}

int GraftTable::Prune(SimTime horizon) {
  std::lock_guard<std::mutex> lock(mu_);
  int pruned = 0;
  SimTime now = Now();
  for (auto it = grafts_.begin(); it != grafts_.end();) {
    if (!it->second.pinned && it->second.last_use + horizon <= now) {
      it = grafts_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  return pruned;
}

}  // namespace ficus::vol
