// Replica-set placement policies (ROADMAP item 4): given per-host load
// (how many volume replicas each host already stores), pick the hosts a
// new volume's replicas should land on. Pure functions over indices so
// the policy is unit-testable without a cluster and usable by any
// control plane (sim::Cluster today).
#ifndef FICUS_SRC_CLUSTER_PLACEMENT_H_
#define FICUS_SRC_CLUSTER_PLACEMENT_H_

#include <cstddef>
#include <vector>

namespace ficus::cluster {

enum class PlacementPolicy {
  // Replicas land on the first `rf` hosts in index order — the legacy
  // "installation-time fstab" behaviour.
  kFirstFit,
  // Replicas spread across the least-loaded hosts (ties broken by index,
  // so placement is deterministic).
  kSpread,
};

// Returns the indices of the `rf` hosts chosen by `policy`, in ascending
// index order. `load[i]` is the number of replicas host i already
// stores. rf is clamped to load.size(); rf == 0 yields an empty pick.
std::vector<size_t> PickReplicaHosts(const std::vector<size_t>& load, size_t rf,
                                     PlacementPolicy policy);

}  // namespace ficus::cluster

#endif  // FICUS_SRC_CLUSTER_PLACEMENT_H_
