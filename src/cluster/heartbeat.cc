#include "src/cluster/heartbeat.h"

#include <algorithm>

#include "src/common/backoff.h"

namespace ficus::cluster {

const char* PeerStateName(PeerState state) {
  switch (state) {
    case PeerState::kAlive:
      return "alive";
    case PeerState::kSuspect:
      return "suspect";
    case PeerState::kDead:
      return "dead";
  }
  return "unknown";
}

void HeartbeatMonitor::RegisterResponder(net::Network* network, net::HostId self) {
  network->port(self)->RegisterRpcService(
      kService, [](net::HostId, const net::Payload& request) -> StatusOr<net::Payload> {
        return request;  // echo: reachability is the only question asked
      });
}

HeartbeatMonitor::HeartbeatMonitor(net::Network* network, net::HostId self,
                                   const SimClock* clock, HeartbeatConfig config,
                                   MetricRegistry* metrics)
    : network_(network),
      self_(self),
      clock_(clock),
      config_(config),
      registry_(metrics != nullptr ? metrics : &owned_registry_) {
  stats_.probes_sent = registry_->counter("cluster.hb.probes_sent");
  stats_.probes_missed = registry_->counter("cluster.hb.probes_missed");
  stats_.transitions = registry_->counter("cluster.hb.transitions");
  stats_.deaths = registry_->counter("cluster.hb.deaths");
  stats_.recoveries = registry_->counter("cluster.hb.recoveries");
}

void HeartbeatMonitor::Watch(net::HostId peer) {
  if (peer == self_ || peer == net::kInvalidHost) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  peers_.try_emplace(peer);  // keeps existing state on re-watch
}

void HeartbeatMonitor::Forget(net::HostId peer) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_.erase(peer);
}

std::vector<net::HostId> HeartbeatMonitor::Watched() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<net::HostId> out;
  out.reserve(peers_.size());
  for (const auto& [id, peer] : peers_) {
    out.push_back(id);
  }
  return out;
}

void HeartbeatMonitor::AddCallback(TransitionCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.push_back(std::move(callback));
}

std::vector<PeerTransition> HeartbeatMonitor::Poll() {
  if (config_.interval == 0) {
    return {};
  }
  SimTime now = clock_->Now();
  // Snapshot the due peers, then probe with the lock released: a probe
  // RPC runs the peer's handler inline and may advance the sim clock.
  std::vector<net::HostId> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, peer] : peers_) {
      if (now >= peer.next_probe) {
        due.push_back(id);
      }
    }
  }

  std::vector<PeerTransition> transitions;
  for (net::HostId id : due) {
    SimTime before = clock_->Now();
    stats_.probes_sent->Increment();
    auto reply = network_->Rpc(self_, id, kService, net::Payload{0xBE}, config_.timeout);
    SimTime rtt = clock_->Now() - before;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = peers_.find(id);
    if (it == peers_.end()) {
      continue;  // forgotten while we probed
    }
    Peer& peer = it->second;
    PeerState old_state = peer.state;
    if (reply.ok()) {
      peer.consecutive_misses = 0;
      peer.state = PeerState::kAlive;
      // Smooth the RTT estimate (7/8 old + 1/8 new, the classic SRTT
      // filter) so one jittered probe does not re-rank read selection.
      peer.rtt = peer.rtt == 0 ? rtt : (peer.rtt * 7 + rtt) / 8;
      peer.next_probe = now + config_.interval;
    } else {
      stats_.probes_missed->Increment();
      ++peer.consecutive_misses;
      if (peer.consecutive_misses >= config_.dead_threshold) {
        peer.state = PeerState::kDead;
      } else if (peer.consecutive_misses >= config_.suspect_threshold) {
        peer.state = PeerState::kSuspect;
      }
      if (peer.state == PeerState::kDead && config_.dead_backoff_base != 0) {
        // Probes of a dead peer back off exponentially; the exponent is
        // how many misses it has been dead for.
        uint32_t dead_misses = peer.consecutive_misses - config_.dead_threshold;
        peer.next_probe = now + BackoffDelay(config_.dead_backoff_base,
                                             config_.dead_backoff_cap, dead_misses);
      } else {
        peer.next_probe = now + config_.interval;
      }
    }
    if (peer.state != old_state) {
      transitions.push_back(PeerTransition{id, old_state, peer.state, clock_->Now()});
    }
  }

  if (!transitions.empty()) {
    std::sort(transitions.begin(), transitions.end(),
              [](const PeerTransition& a, const PeerTransition& b) {
                return a.peer < b.peer;
              });
    std::vector<TransitionCallback> callbacks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      callbacks = callbacks_;
    }
    for (const PeerTransition& t : transitions) {
      stats_.transitions->Increment();
      if (t.to == PeerState::kDead) {
        stats_.deaths->Increment();
      }
      if (t.to == PeerState::kAlive) {
        stats_.recoveries->Increment();
      }
      for (const TransitionCallback& callback : callbacks) {
        callback(t);
      }
    }
  }
  return transitions;
}

PeerState HeartbeatMonitor::StateOf(net::HostId peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  return it != peers_.end() ? it->second.state : PeerState::kAlive;
}

SimTime HeartbeatMonitor::RttOf(net::HostId peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  return it != peers_.end() ? it->second.rtt : 0;
}

void HeartbeatMonitor::ForceState(net::HostId peer, PeerState state) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    return;
  }
  it->second.state = state;
  if (state == PeerState::kDead) {
    it->second.consecutive_misses =
        std::max(it->second.consecutive_misses, config_.dead_threshold);
  }
}

HeartbeatStats HeartbeatMonitor::stats() const {
  HeartbeatStats out;
  out.probes_sent = stats_.probes_sent->value();
  out.probes_missed = stats_.probes_missed->value();
  out.transitions = stats_.transitions->value();
  out.deaths = stats_.deaths->value();
  out.recoveries = stats_.recoveries->value();
  return out;
}

}  // namespace ficus::cluster
