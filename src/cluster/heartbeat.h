// Heartbeat-based failure detection for a Ficus host (ROADMAP item 4;
// SNIPPETS.md snippets 1-2 give the shape: a monitor pinging peers on a
// configurable interval with a miss threshold, publishing transitions
// through callbacks so the replication daemons can fail over and resync).
//
// Each host runs one HeartbeatMonitor. It answers peers' pings through a
// trivial echo RPC service ("ficus.heartbeat") and probes every watched
// peer over the same fault-injectable network the replication protocols
// use, so a flapping link degrades the detector exactly as it degrades
// propagation. The verdict per peer is a three-state machine with
// hysteresis:
//
//     alive --misses >= suspect_threshold--> suspect
//     suspect --misses >= dead_threshold--> dead
//     suspect/dead --one successful probe--> alive
//
// Suspect is the hedge against flapping links: the propagation daemon
// stops burning per-entry retry budget against a suspect peer but keeps
// the entries queued; only a dead verdict suppresses RPCs entirely. Dead
// peers are re-probed with capped exponential backoff (common/backoff.h)
// so a long-dead host costs O(log t) probes instead of one per interval.
//
// Determinism and threading: all timing is SimClock-driven — Poll(), not
// a wall-clock timer, decides which probes are due, so seeded schedules
// replay byte-identically and the unit suite never sleeps. One mutex
// guards the peer table; it is RELEASED around the probe RPC (a probe
// runs a network handler that may itself send), mirroring the network's
// own locking rule, which keeps the monitor safe under the threaded
// runtime.
#ifndef FICUS_SRC_CLUSTER_HEARTBEAT_H_
#define FICUS_SRC_CLUSTER_HEARTBEAT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/net/network.h"

namespace ficus::cluster {

// The failure detector's verdict on one peer.
enum class PeerState : uint8_t {
  kAlive = 0,
  kSuspect = 1,
  kDead = 2,
};

const char* PeerStateName(PeerState state);

struct HeartbeatConfig {
  // How often each watched peer is probed. 0 disables the monitor (the
  // host-level integration uses this as the "membership off" default so
  // existing seeded workloads replay unchanged).
  SimTime interval = 100 * kMillisecond;
  // Patience per probe RPC before it counts as a miss.
  SimTime timeout = 20 * kMillisecond;
  // Consecutive misses before alive degrades to suspect.
  uint32_t suspect_threshold = 2;
  // Consecutive misses before suspect degrades to dead. Must be
  // >= suspect_threshold; the gap is the hysteresis band that keeps a
  // flapping link bouncing alive<->suspect without ever reaching dead.
  uint32_t dead_threshold = 5;
  // Probe spacing for peers already declared dead: the k-th post-death
  // probe waits min(dead_backoff_base * 2^k, dead_backoff_cap). A base of
  // 0 keeps probing every interval (no backoff).
  SimTime dead_backoff_base = 0;
  SimTime dead_backoff_cap = 30 * kSecond;
};

// One published state change. `at` is the SimClock time of the poll that
// decided it.
struct PeerTransition {
  net::HostId peer = net::kInvalidHost;
  PeerState from = PeerState::kAlive;
  PeerState to = PeerState::kAlive;
  SimTime at = 0;
};

// Snapshot of the monitor's `cluster.hb.*` registry cells.
struct HeartbeatStats {
  uint64_t probes_sent = 0;
  uint64_t probes_missed = 0;   // probe failed (unreachable/timeout)
  uint64_t transitions = 0;     // published state changes
  uint64_t deaths = 0;          // transitions into dead
  uint64_t recoveries = 0;      // suspect/dead -> alive
};

class HeartbeatMonitor {
 public:
  using TransitionCallback = std::function<void(const PeerTransition&)>;

  // The echo service peers answer pings on. Every FicusHost registers a
  // responder whether or not it runs a monitor itself, so membership can
  // be enabled per-host.
  static constexpr char kService[] = "ficus.heartbeat";

  // Registers the echo responder for `self` on `network`'s port. Split
  // from the monitor so hosts that only *answer* pings need no monitor.
  static void RegisterResponder(net::Network* network, net::HostId self);

  // All pointers borrowed and must outlive the monitor. `metrics`
  // (optional) receives the `cluster.hb.*` counters.
  HeartbeatMonitor(net::Network* network, net::HostId self, const SimClock* clock,
                   HeartbeatConfig config = HeartbeatConfig{},
                   MetricRegistry* metrics = nullptr);

  const HeartbeatConfig& config() const { return config_; }

  // Starts watching `peer` (idempotent; watching self is a no-op). A new
  // peer starts alive with its first probe due immediately.
  void Watch(net::HostId peer);
  void Forget(net::HostId peer);
  std::vector<net::HostId> Watched() const;

  // Registered callbacks fire on every state change, in registration
  // order, outside the monitor's lock (a callback may query the monitor
  // or trigger resync RPCs).
  void AddCallback(TransitionCallback callback);

  // Probes every watched peer whose probe is due at the current SimClock
  // time, updates the state machine, fires callbacks, and returns the
  // transitions in ascending peer-id order (deterministic under the sim).
  std::vector<PeerTransition> Poll();

  // Current verdicts. Unwatched peers read as alive — the detector never
  // claims knowledge it does not have.
  PeerState StateOf(net::HostId peer) const;
  bool IsDead(net::HostId peer) const { return StateOf(peer) == PeerState::kDead; }

  // Smoothed round-trip time of the last successful probes, microseconds;
  // 0 until a probe has succeeded. Feeds read-your-nearest selection.
  SimTime RttOf(net::HostId peer) const;

  // Test/fault-injection hook: overrides `peer`'s verdict without a probe
  // (the checker's --inject-false-death self-test). The next real probe
  // re-evaluates honestly.
  void ForceState(net::HostId peer, PeerState state);

  HeartbeatStats stats() const;

 private:
  struct Peer {
    PeerState state = PeerState::kAlive;
    uint32_t consecutive_misses = 0;
    SimTime next_probe = 0;  // due immediately on first poll
    SimTime rtt = 0;         // exponentially smoothed, 0 = unmeasured
  };

  struct StatCells {
    Counter* probes_sent;
    Counter* probes_missed;
    Counter* transitions;
    Counter* deaths;
    Counter* recoveries;
  };

  net::Network* network_;
  net::HostId self_;
  const SimClock* clock_;
  HeartbeatConfig config_;
  MetricRegistry owned_registry_;
  MetricRegistry* registry_;
  StatCells stats_;

  // Guards peers_ and callbacks_; released around probe RPCs and while
  // callbacks run.
  mutable std::mutex mu_;
  std::map<net::HostId, Peer> peers_;
  std::vector<TransitionCallback> callbacks_;
};

}  // namespace ficus::cluster

#endif  // FICUS_SRC_CLUSTER_HEARTBEAT_H_
