#include "src/cluster/placement.h"

#include <algorithm>
#include <numeric>

namespace ficus::cluster {

std::vector<size_t> PickReplicaHosts(const std::vector<size_t>& load, size_t rf,
                                     PlacementPolicy policy) {
  rf = std::min(rf, load.size());
  std::vector<size_t> order(load.size());
  std::iota(order.begin(), order.end(), 0);
  if (policy == PlacementPolicy::kSpread) {
    // stable_sort keeps equal-load hosts in index order — the tie-break
    // that makes placement reproducible run to run.
    std::stable_sort(order.begin(), order.end(),
                     [&load](size_t a, size_t b) { return load[a] < load[b]; });
  }
  order.resize(rf);
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace ficus::cluster
