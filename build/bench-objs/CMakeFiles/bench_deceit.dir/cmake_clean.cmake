file(REMOVE_RECURSE
  "../bench/bench_deceit"
  "../bench/bench_deceit.pdb"
  "CMakeFiles/bench_deceit.dir/bench_deceit.cc.o"
  "CMakeFiles/bench_deceit.dir/bench_deceit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deceit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
