file(REMOVE_RECURSE
  "../bench/bench_layer_crossing"
  "../bench/bench_layer_crossing.pdb"
  "CMakeFiles/bench_layer_crossing.dir/bench_layer_crossing.cc.o"
  "CMakeFiles/bench_layer_crossing.dir/bench_layer_crossing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layer_crossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
