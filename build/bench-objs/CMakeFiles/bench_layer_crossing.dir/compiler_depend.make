# Empty compiler generated dependencies file for bench_layer_crossing.
# This may be replaced when dependencies are built.
