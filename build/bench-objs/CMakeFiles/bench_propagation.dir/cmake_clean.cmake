file(REMOVE_RECURSE
  "../bench/bench_propagation"
  "../bench/bench_propagation.pdb"
  "CMakeFiles/bench_propagation.dir/bench_propagation.cc.o"
  "CMakeFiles/bench_propagation.dir/bench_propagation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
