# Empty dependencies file for bench_ablation_notification.
# This may be replaced when dependencies are built.
