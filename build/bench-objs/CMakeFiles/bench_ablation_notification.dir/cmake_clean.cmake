file(REMOVE_RECURSE
  "../bench/bench_ablation_notification"
  "../bench/bench_ablation_notification.pdb"
  "CMakeFiles/bench_ablation_notification.dir/bench_ablation_notification.cc.o"
  "CMakeFiles/bench_ablation_notification.dir/bench_ablation_notification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_notification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
