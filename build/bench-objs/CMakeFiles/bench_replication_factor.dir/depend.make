# Empty dependencies file for bench_replication_factor.
# This may be replaced when dependencies are built.
