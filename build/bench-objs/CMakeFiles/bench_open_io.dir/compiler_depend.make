# Empty compiler generated dependencies file for bench_open_io.
# This may be replaced when dependencies are built.
