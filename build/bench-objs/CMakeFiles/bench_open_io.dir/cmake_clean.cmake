file(REMOVE_RECURSE
  "../bench/bench_open_io"
  "../bench/bench_open_io.pdb"
  "CMakeFiles/bench_open_io.dir/bench_open_io.cc.o"
  "CMakeFiles/bench_open_io.dir/bench_open_io.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_open_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
