file(REMOVE_RECURSE
  "../bench/bench_nfs_cache"
  "../bench/bench_nfs_cache.pdb"
  "CMakeFiles/bench_nfs_cache.dir/bench_nfs_cache.cc.o"
  "CMakeFiles/bench_nfs_cache.dir/bench_nfs_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nfs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
