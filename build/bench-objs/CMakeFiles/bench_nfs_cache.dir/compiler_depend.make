# Empty compiler generated dependencies file for bench_nfs_cache.
# This may be replaced when dependencies are built.
