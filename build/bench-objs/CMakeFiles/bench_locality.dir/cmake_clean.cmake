file(REMOVE_RECURSE
  "../bench/bench_locality"
  "../bench/bench_locality.pdb"
  "CMakeFiles/bench_locality.dir/bench_locality.cc.o"
  "CMakeFiles/bench_locality.dir/bench_locality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
