
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_reconciliation.cc" "bench-objs/CMakeFiles/bench_reconciliation.dir/bench_reconciliation.cc.o" "gcc" "bench-objs/CMakeFiles/bench_reconciliation.dir/bench_reconciliation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ficus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ficus_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/vol/CMakeFiles/ficus_vol.dir/DependInfo.cmake"
  "/root/repo/build/src/repl/CMakeFiles/ficus_repl.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/ficus_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ficus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ufs/CMakeFiles/ficus_ufs.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/ficus_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ficus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ficus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
