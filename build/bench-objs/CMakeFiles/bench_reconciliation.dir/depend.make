# Empty dependencies file for bench_reconciliation.
# This may be replaced when dependencies are built.
