file(REMOVE_RECURSE
  "../bench/bench_reconciliation"
  "../bench/bench_reconciliation.pdb"
  "CMakeFiles/bench_reconciliation.dir/bench_reconciliation.cc.o"
  "CMakeFiles/bench_reconciliation.dir/bench_reconciliation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconciliation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
