file(REMOVE_RECURSE
  "../bench/bench_conflicts"
  "../bench/bench_conflicts.pdb"
  "CMakeFiles/bench_conflicts.dir/bench_conflicts.cc.o"
  "CMakeFiles/bench_conflicts.dir/bench_conflicts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
