# Empty dependencies file for bench_conflicts.
# This may be replaced when dependencies are built.
