# Empty compiler generated dependencies file for bench_version_vector.
# This may be replaced when dependencies are built.
