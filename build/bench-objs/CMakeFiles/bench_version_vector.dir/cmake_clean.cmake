file(REMOVE_RECURSE
  "../bench/bench_version_vector"
  "../bench/bench_version_vector.pdb"
  "CMakeFiles/bench_version_vector.dir/bench_version_vector.cc.o"
  "CMakeFiles/bench_version_vector.dir/bench_version_vector.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_version_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
