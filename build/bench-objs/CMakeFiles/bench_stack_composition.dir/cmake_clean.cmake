file(REMOVE_RECURSE
  "../bench/bench_stack_composition"
  "../bench/bench_stack_composition.pdb"
  "CMakeFiles/bench_stack_composition.dir/bench_stack_composition.cc.o"
  "CMakeFiles/bench_stack_composition.dir/bench_stack_composition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stack_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
