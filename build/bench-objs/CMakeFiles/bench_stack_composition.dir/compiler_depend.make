# Empty compiler generated dependencies file for bench_stack_composition.
# This may be replaced when dependencies are built.
