# Empty compiler generated dependencies file for bench_autograft.
# This may be replaced when dependencies are built.
