file(REMOVE_RECURSE
  "../bench/bench_autograft"
  "../bench/bench_autograft.pdb"
  "CMakeFiles/bench_autograft.dir/bench_autograft.cc.o"
  "CMakeFiles/bench_autograft.dir/bench_autograft.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autograft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
