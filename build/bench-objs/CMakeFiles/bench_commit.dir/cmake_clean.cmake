file(REMOVE_RECURSE
  "../bench/bench_commit"
  "../bench/bench_commit.pdb"
  "CMakeFiles/bench_commit.dir/bench_commit.cc.o"
  "CMakeFiles/bench_commit.dir/bench_commit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
