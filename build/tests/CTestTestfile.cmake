# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/ufs_test[1]_include.cmake")
include("/root/repo/build/tests/vfs_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/nfs_test[1]_include.cmake")
include("/root/repo/build/tests/repl_test[1]_include.cmake")
include("/root/repo/build/tests/vol_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
