file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration/autograft_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/autograft_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/convergence_property_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/convergence_property_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/crash_recovery_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/crash_recovery_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/full_stack_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/full_stack_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/migration_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/migration_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/mixed_placement_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/mixed_placement_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/partition_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/partition_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/scale_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/scale_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/syscall_stack_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/syscall_stack_test.cc.o.d"
  "integration_test"
  "integration_test.pdb"
  "integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
