
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vfs/cipher_layer_test.cc" "tests/CMakeFiles/vfs_test.dir/vfs/cipher_layer_test.cc.o" "gcc" "tests/CMakeFiles/vfs_test.dir/vfs/cipher_layer_test.cc.o.d"
  "/root/repo/tests/vfs/mem_vfs_test.cc" "tests/CMakeFiles/vfs_test.dir/vfs/mem_vfs_test.cc.o" "gcc" "tests/CMakeFiles/vfs_test.dir/vfs/mem_vfs_test.cc.o.d"
  "/root/repo/tests/vfs/pass_through_test.cc" "tests/CMakeFiles/vfs_test.dir/vfs/pass_through_test.cc.o" "gcc" "tests/CMakeFiles/vfs_test.dir/vfs/pass_through_test.cc.o.d"
  "/root/repo/tests/vfs/path_ops_test.cc" "tests/CMakeFiles/vfs_test.dir/vfs/path_ops_test.cc.o" "gcc" "tests/CMakeFiles/vfs_test.dir/vfs/path_ops_test.cc.o.d"
  "/root/repo/tests/vfs/stats_layer_test.cc" "tests/CMakeFiles/vfs_test.dir/vfs/stats_layer_test.cc.o" "gcc" "tests/CMakeFiles/vfs_test.dir/vfs/stats_layer_test.cc.o.d"
  "/root/repo/tests/vfs/syscalls_test.cc" "tests/CMakeFiles/vfs_test.dir/vfs/syscalls_test.cc.o" "gcc" "tests/CMakeFiles/vfs_test.dir/vfs/syscalls_test.cc.o.d"
  "/root/repo/tests/vfs/vnode_test.cc" "tests/CMakeFiles/vfs_test.dir/vfs/vnode_test.cc.o" "gcc" "tests/CMakeFiles/vfs_test.dir/vfs/vnode_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ficus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ficus_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/vol/CMakeFiles/ficus_vol.dir/DependInfo.cmake"
  "/root/repo/build/src/repl/CMakeFiles/ficus_repl.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/ficus_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ficus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ufs/CMakeFiles/ficus_ufs.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/ficus_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ficus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ficus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
