file(REMOVE_RECURSE
  "CMakeFiles/vol_test.dir/vol/graft_test.cc.o"
  "CMakeFiles/vol_test.dir/vol/graft_test.cc.o.d"
  "CMakeFiles/vol_test.dir/vol/registry_test.cc.o"
  "CMakeFiles/vol_test.dir/vol/registry_test.cc.o.d"
  "vol_test"
  "vol_test.pdb"
  "vol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
