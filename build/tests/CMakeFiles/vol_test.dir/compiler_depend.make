# Empty compiler generated dependencies file for vol_test.
# This may be replaced when dependencies are built.
