file(REMOVE_RECURSE
  "CMakeFiles/repl_test.dir/repl/crash_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/crash_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/facade_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/facade_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/gc_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/gc_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/ids_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/ids_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/inode_attrs_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/inode_attrs_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/logical_dag_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/logical_dag_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/logical_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/logical_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/physical_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/physical_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/propagation_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/propagation_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/reconcile_property_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/reconcile_property_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/reconcile_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/reconcile_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/remove_update_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/remove_update_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/types_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/types_test.cc.o.d"
  "CMakeFiles/repl_test.dir/repl/version_vector_test.cc.o"
  "CMakeFiles/repl_test.dir/repl/version_vector_test.cc.o.d"
  "repl_test"
  "repl_test.pdb"
  "repl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
