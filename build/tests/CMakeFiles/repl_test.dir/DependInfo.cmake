
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/repl/crash_test.cc" "tests/CMakeFiles/repl_test.dir/repl/crash_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/crash_test.cc.o.d"
  "/root/repo/tests/repl/facade_test.cc" "tests/CMakeFiles/repl_test.dir/repl/facade_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/facade_test.cc.o.d"
  "/root/repo/tests/repl/gc_test.cc" "tests/CMakeFiles/repl_test.dir/repl/gc_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/gc_test.cc.o.d"
  "/root/repo/tests/repl/ids_test.cc" "tests/CMakeFiles/repl_test.dir/repl/ids_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/ids_test.cc.o.d"
  "/root/repo/tests/repl/inode_attrs_test.cc" "tests/CMakeFiles/repl_test.dir/repl/inode_attrs_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/inode_attrs_test.cc.o.d"
  "/root/repo/tests/repl/logical_dag_test.cc" "tests/CMakeFiles/repl_test.dir/repl/logical_dag_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/logical_dag_test.cc.o.d"
  "/root/repo/tests/repl/logical_test.cc" "tests/CMakeFiles/repl_test.dir/repl/logical_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/logical_test.cc.o.d"
  "/root/repo/tests/repl/physical_test.cc" "tests/CMakeFiles/repl_test.dir/repl/physical_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/physical_test.cc.o.d"
  "/root/repo/tests/repl/propagation_test.cc" "tests/CMakeFiles/repl_test.dir/repl/propagation_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/propagation_test.cc.o.d"
  "/root/repo/tests/repl/reconcile_property_test.cc" "tests/CMakeFiles/repl_test.dir/repl/reconcile_property_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/reconcile_property_test.cc.o.d"
  "/root/repo/tests/repl/reconcile_test.cc" "tests/CMakeFiles/repl_test.dir/repl/reconcile_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/reconcile_test.cc.o.d"
  "/root/repo/tests/repl/remove_update_test.cc" "tests/CMakeFiles/repl_test.dir/repl/remove_update_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/remove_update_test.cc.o.d"
  "/root/repo/tests/repl/types_test.cc" "tests/CMakeFiles/repl_test.dir/repl/types_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/types_test.cc.o.d"
  "/root/repo/tests/repl/version_vector_test.cc" "tests/CMakeFiles/repl_test.dir/repl/version_vector_test.cc.o" "gcc" "tests/CMakeFiles/repl_test.dir/repl/version_vector_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ficus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ficus_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/vol/CMakeFiles/ficus_vol.dir/DependInfo.cmake"
  "/root/repo/build/src/repl/CMakeFiles/ficus_repl.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/ficus_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ficus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ufs/CMakeFiles/ficus_ufs.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/ficus_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ficus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ficus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
