file(REMOVE_RECURSE
  "CMakeFiles/ficus_common.dir/clock.cc.o"
  "CMakeFiles/ficus_common.dir/clock.cc.o.d"
  "CMakeFiles/ficus_common.dir/hex.cc.o"
  "CMakeFiles/ficus_common.dir/hex.cc.o.d"
  "CMakeFiles/ficus_common.dir/logging.cc.o"
  "CMakeFiles/ficus_common.dir/logging.cc.o.d"
  "CMakeFiles/ficus_common.dir/rng.cc.o"
  "CMakeFiles/ficus_common.dir/rng.cc.o.d"
  "CMakeFiles/ficus_common.dir/status.cc.o"
  "CMakeFiles/ficus_common.dir/status.cc.o.d"
  "libficus_common.a"
  "libficus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ficus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
