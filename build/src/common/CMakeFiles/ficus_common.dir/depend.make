# Empty dependencies file for ficus_common.
# This may be replaced when dependencies are built.
