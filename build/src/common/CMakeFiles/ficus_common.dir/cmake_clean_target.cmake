file(REMOVE_RECURSE
  "libficus_common.a"
)
