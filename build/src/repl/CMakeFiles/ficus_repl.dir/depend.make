# Empty dependencies file for ficus_repl.
# This may be replaced when dependencies are built.
