file(REMOVE_RECURSE
  "libficus_repl.a"
)
