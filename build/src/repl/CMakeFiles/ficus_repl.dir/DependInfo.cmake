
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repl/facade.cc" "src/repl/CMakeFiles/ficus_repl.dir/facade.cc.o" "gcc" "src/repl/CMakeFiles/ficus_repl.dir/facade.cc.o.d"
  "/root/repo/src/repl/ids.cc" "src/repl/CMakeFiles/ficus_repl.dir/ids.cc.o" "gcc" "src/repl/CMakeFiles/ficus_repl.dir/ids.cc.o.d"
  "/root/repo/src/repl/logical.cc" "src/repl/CMakeFiles/ficus_repl.dir/logical.cc.o" "gcc" "src/repl/CMakeFiles/ficus_repl.dir/logical.cc.o.d"
  "/root/repo/src/repl/physical.cc" "src/repl/CMakeFiles/ficus_repl.dir/physical.cc.o" "gcc" "src/repl/CMakeFiles/ficus_repl.dir/physical.cc.o.d"
  "/root/repo/src/repl/propagation.cc" "src/repl/CMakeFiles/ficus_repl.dir/propagation.cc.o" "gcc" "src/repl/CMakeFiles/ficus_repl.dir/propagation.cc.o.d"
  "/root/repo/src/repl/reconcile.cc" "src/repl/CMakeFiles/ficus_repl.dir/reconcile.cc.o" "gcc" "src/repl/CMakeFiles/ficus_repl.dir/reconcile.cc.o.d"
  "/root/repo/src/repl/types.cc" "src/repl/CMakeFiles/ficus_repl.dir/types.cc.o" "gcc" "src/repl/CMakeFiles/ficus_repl.dir/types.cc.o.d"
  "/root/repo/src/repl/version_vector.cc" "src/repl/CMakeFiles/ficus_repl.dir/version_vector.cc.o" "gcc" "src/repl/CMakeFiles/ficus_repl.dir/version_vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ficus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ufs/CMakeFiles/ficus_ufs.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/ficus_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ficus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/ficus_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ficus_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
