file(REMOVE_RECURSE
  "CMakeFiles/ficus_repl.dir/facade.cc.o"
  "CMakeFiles/ficus_repl.dir/facade.cc.o.d"
  "CMakeFiles/ficus_repl.dir/ids.cc.o"
  "CMakeFiles/ficus_repl.dir/ids.cc.o.d"
  "CMakeFiles/ficus_repl.dir/logical.cc.o"
  "CMakeFiles/ficus_repl.dir/logical.cc.o.d"
  "CMakeFiles/ficus_repl.dir/physical.cc.o"
  "CMakeFiles/ficus_repl.dir/physical.cc.o.d"
  "CMakeFiles/ficus_repl.dir/propagation.cc.o"
  "CMakeFiles/ficus_repl.dir/propagation.cc.o.d"
  "CMakeFiles/ficus_repl.dir/reconcile.cc.o"
  "CMakeFiles/ficus_repl.dir/reconcile.cc.o.d"
  "CMakeFiles/ficus_repl.dir/types.cc.o"
  "CMakeFiles/ficus_repl.dir/types.cc.o.d"
  "CMakeFiles/ficus_repl.dir/version_vector.cc.o"
  "CMakeFiles/ficus_repl.dir/version_vector.cc.o.d"
  "libficus_repl.a"
  "libficus_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ficus_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
