file(REMOVE_RECURSE
  "libficus_vfs.a"
)
