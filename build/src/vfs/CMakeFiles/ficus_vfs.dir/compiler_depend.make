# Empty compiler generated dependencies file for ficus_vfs.
# This may be replaced when dependencies are built.
