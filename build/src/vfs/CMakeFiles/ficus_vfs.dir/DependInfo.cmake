
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfs/cipher_layer.cc" "src/vfs/CMakeFiles/ficus_vfs.dir/cipher_layer.cc.o" "gcc" "src/vfs/CMakeFiles/ficus_vfs.dir/cipher_layer.cc.o.d"
  "/root/repo/src/vfs/mem_vfs.cc" "src/vfs/CMakeFiles/ficus_vfs.dir/mem_vfs.cc.o" "gcc" "src/vfs/CMakeFiles/ficus_vfs.dir/mem_vfs.cc.o.d"
  "/root/repo/src/vfs/pass_through.cc" "src/vfs/CMakeFiles/ficus_vfs.dir/pass_through.cc.o" "gcc" "src/vfs/CMakeFiles/ficus_vfs.dir/pass_through.cc.o.d"
  "/root/repo/src/vfs/path_ops.cc" "src/vfs/CMakeFiles/ficus_vfs.dir/path_ops.cc.o" "gcc" "src/vfs/CMakeFiles/ficus_vfs.dir/path_ops.cc.o.d"
  "/root/repo/src/vfs/stats_layer.cc" "src/vfs/CMakeFiles/ficus_vfs.dir/stats_layer.cc.o" "gcc" "src/vfs/CMakeFiles/ficus_vfs.dir/stats_layer.cc.o.d"
  "/root/repo/src/vfs/syscalls.cc" "src/vfs/CMakeFiles/ficus_vfs.dir/syscalls.cc.o" "gcc" "src/vfs/CMakeFiles/ficus_vfs.dir/syscalls.cc.o.d"
  "/root/repo/src/vfs/vnode.cc" "src/vfs/CMakeFiles/ficus_vfs.dir/vnode.cc.o" "gcc" "src/vfs/CMakeFiles/ficus_vfs.dir/vnode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ficus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
