file(REMOVE_RECURSE
  "CMakeFiles/ficus_vfs.dir/cipher_layer.cc.o"
  "CMakeFiles/ficus_vfs.dir/cipher_layer.cc.o.d"
  "CMakeFiles/ficus_vfs.dir/mem_vfs.cc.o"
  "CMakeFiles/ficus_vfs.dir/mem_vfs.cc.o.d"
  "CMakeFiles/ficus_vfs.dir/pass_through.cc.o"
  "CMakeFiles/ficus_vfs.dir/pass_through.cc.o.d"
  "CMakeFiles/ficus_vfs.dir/path_ops.cc.o"
  "CMakeFiles/ficus_vfs.dir/path_ops.cc.o.d"
  "CMakeFiles/ficus_vfs.dir/stats_layer.cc.o"
  "CMakeFiles/ficus_vfs.dir/stats_layer.cc.o.d"
  "CMakeFiles/ficus_vfs.dir/syscalls.cc.o"
  "CMakeFiles/ficus_vfs.dir/syscalls.cc.o.d"
  "CMakeFiles/ficus_vfs.dir/vnode.cc.o"
  "CMakeFiles/ficus_vfs.dir/vnode.cc.o.d"
  "libficus_vfs.a"
  "libficus_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ficus_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
