# Empty dependencies file for ficus_sim.
# This may be replaced when dependencies are built.
