file(REMOVE_RECURSE
  "CMakeFiles/ficus_sim.dir/cluster.cc.o"
  "CMakeFiles/ficus_sim.dir/cluster.cc.o.d"
  "CMakeFiles/ficus_sim.dir/host.cc.o"
  "CMakeFiles/ficus_sim.dir/host.cc.o.d"
  "CMakeFiles/ficus_sim.dir/workload.cc.o"
  "CMakeFiles/ficus_sim.dir/workload.cc.o.d"
  "libficus_sim.a"
  "libficus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ficus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
