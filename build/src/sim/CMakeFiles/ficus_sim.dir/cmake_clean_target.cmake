file(REMOVE_RECURSE
  "libficus_sim.a"
)
