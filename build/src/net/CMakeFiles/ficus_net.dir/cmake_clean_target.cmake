file(REMOVE_RECURSE
  "libficus_net.a"
)
