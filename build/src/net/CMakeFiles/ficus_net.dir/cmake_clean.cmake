file(REMOVE_RECURSE
  "CMakeFiles/ficus_net.dir/network.cc.o"
  "CMakeFiles/ficus_net.dir/network.cc.o.d"
  "libficus_net.a"
  "libficus_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ficus_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
