# Empty compiler generated dependencies file for ficus_net.
# This may be replaced when dependencies are built.
