file(REMOVE_RECURSE
  "libficus_storage.a"
)
