# Empty dependencies file for ficus_storage.
# This may be replaced when dependencies are built.
