file(REMOVE_RECURSE
  "CMakeFiles/ficus_storage.dir/block_device.cc.o"
  "CMakeFiles/ficus_storage.dir/block_device.cc.o.d"
  "CMakeFiles/ficus_storage.dir/buffer_cache.cc.o"
  "CMakeFiles/ficus_storage.dir/buffer_cache.cc.o.d"
  "libficus_storage.a"
  "libficus_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ficus_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
