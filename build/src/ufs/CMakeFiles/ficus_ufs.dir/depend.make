# Empty dependencies file for ficus_ufs.
# This may be replaced when dependencies are built.
