file(REMOVE_RECURSE
  "libficus_ufs.a"
)
