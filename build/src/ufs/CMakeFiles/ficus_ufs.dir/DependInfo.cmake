
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ufs/ufs.cc" "src/ufs/CMakeFiles/ficus_ufs.dir/ufs.cc.o" "gcc" "src/ufs/CMakeFiles/ficus_ufs.dir/ufs.cc.o.d"
  "/root/repo/src/ufs/ufs_vfs.cc" "src/ufs/CMakeFiles/ficus_ufs.dir/ufs_vfs.cc.o" "gcc" "src/ufs/CMakeFiles/ficus_ufs.dir/ufs_vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ficus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ficus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/ficus_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
