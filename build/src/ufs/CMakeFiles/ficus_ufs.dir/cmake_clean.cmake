file(REMOVE_RECURSE
  "CMakeFiles/ficus_ufs.dir/ufs.cc.o"
  "CMakeFiles/ficus_ufs.dir/ufs.cc.o.d"
  "CMakeFiles/ficus_ufs.dir/ufs_vfs.cc.o"
  "CMakeFiles/ficus_ufs.dir/ufs_vfs.cc.o.d"
  "libficus_ufs.a"
  "libficus_ufs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ficus_ufs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
