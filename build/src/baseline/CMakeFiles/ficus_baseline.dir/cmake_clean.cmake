file(REMOVE_RECURSE
  "CMakeFiles/ficus_baseline.dir/availability.cc.o"
  "CMakeFiles/ficus_baseline.dir/availability.cc.o.d"
  "CMakeFiles/ficus_baseline.dir/policies.cc.o"
  "CMakeFiles/ficus_baseline.dir/policies.cc.o.d"
  "libficus_baseline.a"
  "libficus_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ficus_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
