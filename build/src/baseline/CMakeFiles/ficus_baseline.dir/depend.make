# Empty dependencies file for ficus_baseline.
# This may be replaced when dependencies are built.
