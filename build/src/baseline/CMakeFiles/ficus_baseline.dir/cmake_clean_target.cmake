file(REMOVE_RECURSE
  "libficus_baseline.a"
)
