file(REMOVE_RECURSE
  "CMakeFiles/ficus_nfs.dir/client.cc.o"
  "CMakeFiles/ficus_nfs.dir/client.cc.o.d"
  "CMakeFiles/ficus_nfs.dir/protocol.cc.o"
  "CMakeFiles/ficus_nfs.dir/protocol.cc.o.d"
  "CMakeFiles/ficus_nfs.dir/server.cc.o"
  "CMakeFiles/ficus_nfs.dir/server.cc.o.d"
  "libficus_nfs.a"
  "libficus_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ficus_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
