
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nfs/client.cc" "src/nfs/CMakeFiles/ficus_nfs.dir/client.cc.o" "gcc" "src/nfs/CMakeFiles/ficus_nfs.dir/client.cc.o.d"
  "/root/repo/src/nfs/protocol.cc" "src/nfs/CMakeFiles/ficus_nfs.dir/protocol.cc.o" "gcc" "src/nfs/CMakeFiles/ficus_nfs.dir/protocol.cc.o.d"
  "/root/repo/src/nfs/server.cc" "src/nfs/CMakeFiles/ficus_nfs.dir/server.cc.o" "gcc" "src/nfs/CMakeFiles/ficus_nfs.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ficus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/ficus_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ficus_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
