file(REMOVE_RECURSE
  "libficus_nfs.a"
)
