# Empty dependencies file for ficus_nfs.
# This may be replaced when dependencies are built.
