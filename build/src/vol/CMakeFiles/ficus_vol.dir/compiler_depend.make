# Empty compiler generated dependencies file for ficus_vol.
# This may be replaced when dependencies are built.
