file(REMOVE_RECURSE
  "libficus_vol.a"
)
