file(REMOVE_RECURSE
  "CMakeFiles/ficus_vol.dir/graft.cc.o"
  "CMakeFiles/ficus_vol.dir/graft.cc.o.d"
  "CMakeFiles/ficus_vol.dir/registry.cc.o"
  "CMakeFiles/ficus_vol.dir/registry.cc.o.d"
  "libficus_vol.a"
  "libficus_vol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ficus_vol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
