# Empty dependencies file for autograft_tour.
# This may be replaced when dependencies are built.
