file(REMOVE_RECURSE
  "CMakeFiles/autograft_tour.dir/autograft_tour.cpp.o"
  "CMakeFiles/autograft_tour.dir/autograft_tour.cpp.o.d"
  "autograft_tour"
  "autograft_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograft_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
