file(REMOVE_RECURSE
  "CMakeFiles/nfs_interop.dir/nfs_interop.cpp.o"
  "CMakeFiles/nfs_interop.dir/nfs_interop.cpp.o.d"
  "nfs_interop"
  "nfs_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfs_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
