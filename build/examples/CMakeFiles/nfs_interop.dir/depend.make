# Empty dependencies file for nfs_interop.
# This may be replaced when dependencies are built.
