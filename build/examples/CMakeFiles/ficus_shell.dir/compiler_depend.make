# Empty compiler generated dependencies file for ficus_shell.
# This may be replaced when dependencies are built.
