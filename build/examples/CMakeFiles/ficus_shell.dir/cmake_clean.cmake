file(REMOVE_RECURSE
  "CMakeFiles/ficus_shell.dir/ficus_shell.cpp.o"
  "CMakeFiles/ficus_shell.dir/ficus_shell.cpp.o.d"
  "ficus_shell"
  "ficus_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ficus_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
