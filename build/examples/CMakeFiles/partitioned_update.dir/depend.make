# Empty dependencies file for partitioned_update.
# This may be replaced when dependencies are built.
