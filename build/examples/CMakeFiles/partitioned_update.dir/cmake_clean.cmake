file(REMOVE_RECURSE
  "CMakeFiles/partitioned_update.dir/partitioned_update.cpp.o"
  "CMakeFiles/partitioned_update.dir/partitioned_update.cpp.o.d"
  "partitioned_update"
  "partitioned_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
