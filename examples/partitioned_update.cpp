// The headline Ficus scenario (paper abstract): update during network
// partition, automatic directory repair, file-conflict detection, and
// owner resolution.
//
// Two sites share a replicated project volume. The network splits; both
// sides keep working — one renames the project directory, both add files,
// and both edit the same document. After the partition heals,
// reconciliation merges the namespace automatically and flags the
// double-edited document for its owner, who resolves it.
//
//   $ ./examples/partitioned_update
#include <cstdio>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

using namespace ficus;  // NOLINT

namespace {

void ShowTree(const char* who, repl::LogicalLayer* fs) {
  std::printf("  [%s] /\n", who);
  auto entries = vfs::ListDir(fs, "");
  if (!entries.ok()) {
    return;
  }
  for (const auto& e : *entries) {
    std::printf("  [%s]   %s%s\n", who, e.name.c_str(),
                e.type == vfs::VnodeType::kDirectory ? "/" : "");
    if (e.type == vfs::VnodeType::kDirectory) {
      auto inner = vfs::ListDir(fs, e.name);
      if (inner.ok()) {
        for (const auto& ie : *inner) {
          std::printf("  [%s]     %s\n", who, ie.name.c_str());
        }
      }
    }
  }
}

}  // namespace

int main() {
  sim::Cluster cluster;
  sim::FicusHost* west = cluster.AddHost("west-coast");
  sim::FicusHost* east = cluster.AddHost("east-coast");
  auto volume = cluster.CreateVolume({west, east});
  auto west_fs = cluster.MountEverywhere(west, *volume);
  auto east_fs = cluster.MountEverywhere(east, *volume);

  // Shared starting state.
  (void)vfs::MkdirAll(*west_fs, "paper");
  (void)vfs::WriteFileAt(*west_fs, "paper/draft.txt", "abstract: TODO\n");
  (void)cluster.ReconcileUntilQuiescent();
  std::printf("== before the partition ==\n");
  ShowTree("west", *west_fs);

  // The continental link goes down. Both coasts keep working.
  std::printf("\n== network partitioned; both sides keep updating ==\n");
  cluster.Partition({{west}, {east}});

  // West renames the directory and adds a figure.
  (void)vfs::RenamePath(*west_fs, "paper", "paper-v2");
  (void)vfs::WriteFileAt(*west_fs, "paper-v2/figure1.dat", "...plot data...\n");
  std::printf("west: renamed paper/ -> paper-v2/, added figure1.dat\n");

  // East (still seeing the old name) adds a bibliography and edits the
  // draft; west edits the draft too -> a genuine write/write conflict.
  (void)vfs::WriteFileAt(*east_fs, "paper/refs.bib", "@inproceedings{ficus90}\n");
  (void)vfs::WriteFileAt(*east_fs, "paper/draft.txt", "abstract: east's words\n");
  (void)vfs::WriteFileAt(*west_fs, "paper-v2/draft.txt", "abstract: west's words\n");
  std::printf("east: added refs.bib, edited draft.txt\n");
  std::printf("west: edited draft.txt (conflict with east!)\n");

  // Heal and reconcile.
  std::printf("\n== partition heals; reconciliation runs ==\n");
  cluster.Heal();
  (void)cluster.ReconcileUntilQuiescent();
  ShowTree("west", *west_fs);
  ShowTree("east", *east_fs);
  std::printf("(directory updates merged automatically; the concurrently renamed\n"
              " directory keeps BOTH names, pointing at one directory — section 2.5)\n");

  // The double-edited file is flagged, not silently merged.
  auto read = vfs::ReadFileAt(*west_fs, "paper-v2/draft.txt");
  std::printf("\nreading draft.txt: %s\n", read.ok() ? "ok (unexpected!)"
                                                     : read.status().ToString().c_str());
  size_t conflicts = west->conflict_log().CountOf(repl::ConflictKind::kFileUpdate) +
                     east->conflict_log().CountOf(repl::ConflictKind::kFileUpdate);
  std::printf("conflict log entries (file updates): %zu\n", conflicts);

  // The owner resolves by writing a merged version that dominates both.
  repl::PhysicalLayer* phys = west->registry().LocalReplica(*volume);
  auto entries = phys->ReadDirectory(repl::kRootFileId);
  for (const auto& e : *entries) {
    if (!e.alive || !repl::IsDirectoryLike(e.type)) {
      continue;
    }
    auto inner = phys->ReadDirectory(e.file);
    for (const auto& ie : *inner) {
      if (ie.alive && ie.name == "draft.txt") {
        std::string merged = "abstract: east's and west's words, merged by the owner\n";
        (void)(*west_fs)->ResolveFileConflict(
            ie.file, std::vector<uint8_t>(merged.begin(), merged.end()));
      }
    }
  }
  (void)cluster.ReconcileUntilQuiescent();
  read = vfs::ReadFileAt(*east_fs, "paper/draft.txt");
  std::printf("\nafter owner resolution, east reads: %s",
              read.ok() ? read->c_str() : read.status().ToString().c_str());
  return 0;
}
