// NFS in two roles (paper section 2.2):
//   1. transport between Ficus layers on different hosts — including the
//      overloaded-lookup trick that smuggles open/close past stateless NFS;
//   2. access path for non-Ficus hosts: a plain NFS client mounts a Ficus
//      logical layer and uses the replicated volume with no Ficus code.
//
//   $ ./examples/nfs_interop
#include <cstdio>

#include "src/nfs/client.h"
#include "src/nfs/server.h"
#include "src/repl/facade.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

using namespace ficus;  // NOLINT

int main() {
  // --- Role 1: NFS between Ficus layers -------------------------------
  std::printf("Role 1 — NFS as the transport between Ficus layers\n");
  sim::Cluster cluster;
  sim::FicusHost* diskless = cluster.AddHost("diskless-client");
  sim::FicusHost* fileserver = cluster.AddHost("fileserver");
  auto volume = cluster.CreateVolume({fileserver});  // data only on the server
  auto fs = cluster.MountEverywhere(diskless, *volume);

  cluster.network().ResetStats();
  (void)vfs::MkdirAll(*fs, "home");
  (void)vfs::WriteFileAt(*fs, "home/hello.txt", "logical layer here, physical over NFS\n");
  auto contents = vfs::ReadFileAt(*fs, "home/hello.txt");
  std::printf("  read back through the cross-host stack: %s",
              contents.ok() ? contents->c_str() : contents.status().ToString().c_str());
  std::printf("  RPCs used: %llu (every physical-layer call rides a lookup name\n",
              static_cast<unsigned long long>(cluster.network().stats().rpcs_sent));
  std::printf("  or a session file — NFS itself has no open/close to carry)\n");

  // Show the open/close tunneling explicitly: a logical-layer Open reaches
  // the remote physical layer even though NFS dropped the vnode open.
  repl::PhysicalLayer* phys = fileserver->registry().LocalReplica(*volume);
  uint64_t opens_before = phys->stats().opens_noted;
  auto root = (*fs)->Root();
  auto file = vfs::WalkPath(*root, "home/hello.txt", {});
  (void)(*file)->Open(vfs::kOpenRead, {});
  (void)(*file)->Close(vfs::kOpenRead, {});
  std::printf("  remote physical layer observed opens: %llu -> %llu\n",
              static_cast<unsigned long long>(opens_before),
              static_cast<unsigned long long>(phys->stats().opens_noted));

  // --- Role 2: a non-Ficus host mounts Ficus over plain NFS -----------
  std::printf("\nRole 2 — a non-Ficus host mounts the volume over plain NFS\n");
  // Export the fileserver's logical layer through an ordinary NfsServer.
  auto served = cluster.MountEverywhere(fileserver, *volume);
  // The fileserver already runs its Ficus-transport NFS service; the
  // gateway export gets its own service name so both coexist.
  net::HostId legacy = cluster.network().AddHost("legacy-workstation");
  nfs::NfsServer gateway(&cluster.network(), fileserver->id(), *served, "nfs-export");
  nfs::NfsClient legacy_client(&cluster.network(), legacy, fileserver->id(),
                               &cluster.clock(), nfs::ClientConfig{}, "nfs-export");

  auto via_nfs = vfs::ReadFileAt(&legacy_client, "home/hello.txt");
  std::printf("  legacy host reads via vanilla NFS: %s",
              via_nfs.ok() ? via_nfs->c_str() : via_nfs.status().ToString().c_str());
  (void)vfs::WriteFileAt(&legacy_client, "home/from-legacy.txt",
                         "written by a host with zero Ficus code\n");
  auto echoed = vfs::ReadFileAt(*fs, "home/from-legacy.txt");
  std::printf("  Ficus-side view of the legacy write: %s",
              echoed.ok() ? echoed->c_str() : echoed.status().ToString().c_str());
  std::printf("\n  (the legacy host gets replication transparently: its writes are\n"
              "   version-vectored, notified, and reconciled like any others)\n");
  return 0;
}
