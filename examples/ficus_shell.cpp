// An interactive shell over a simulated Ficus cluster — poke at
// replication, partitions, conflicts, and reconciliation by hand.
//
//   $ ./examples/ficus_shell
//   ficus[h0]> help
//
// The cluster starts with three hosts, each storing a replica of one
// volume. Commands are deliberately unix-ish. Also accepts a script on
// stdin (exits on EOF), so e.g.:
//   printf 'write f hello\npartition h0 / h1 h2\nwrite f bye\nheal\nreconcile\nstat f\n'
// piped into ./examples/ficus_shell
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

using namespace ficus;  // NOLINT

namespace {

struct Shell {
  sim::Cluster cluster;
  std::vector<sim::FicusHost*> hosts;
  repl::VolumeId volume;
  size_t current = 0;  // host whose mount serves commands

  repl::LogicalLayer* fs() {
    auto logical = cluster.MountEverywhere(hosts[current], volume);
    return logical.ok() ? logical.value() : nullptr;
  }

  sim::FicusHost* HostByName(const std::string& name) {
    for (sim::FicusHost* host : hosts) {
      if (host->name() == name) {
        return host;
      }
    }
    return nullptr;
  }
};

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  ls [path]                list a directory\n"
      "  write <path> <text...>   write a file (creates parents)\n"
      "  cat <path>               read a file\n"
      "  mkdir <path>             create directories\n"
      "  rm <path>                remove file or empty directory\n"
      "  mv <old> <new>           rename\n"
      "  stat <path>              attributes + per-replica version vectors\n"
      "  host <name>              switch the host issuing commands\n"
      "  hosts                    list hosts\n"
      "  partition <h..> / <h..>  split the network into two groups\n"
      "  heal                     reconnect everything\n"
      "  propagate                run every propagation daemon once\n"
      "  reconcile                reconcile until quiescent\n"
      "  conflicts                show the conflict logs\n"
      "  fsck                     run consistency checks on every replica\n"
      "  orphans                  list orphaned file replicas per host\n"
      "  resolve <path> <text...> owner-resolve a conflicted file\n"
      "  help                     this text\n"
      "  quit                     exit\n");
}

std::vector<std::string> Split(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> out;
  std::string token;
  while (in >> token) {
    out.push_back(token);
  }
  return out;
}

std::string Rest(const std::vector<std::string>& tokens, size_t from) {
  std::string out;
  for (size_t i = from; i < tokens.size(); ++i) {
    if (!out.empty()) {
      out += " ";
    }
    out += tokens[i];
  }
  return out;
}

// Finds a file's id by path (for stat / resolve).
StatusOr<repl::FileId> ResolveFileId(Shell& shell, const std::string& path) {
  repl::PhysicalLayer* phys = shell.hosts[shell.current]->registry().LocalReplica(shell.volume);
  if (phys == nullptr) {
    return NotFoundError("current host stores no replica");
  }
  repl::FileId dir = repl::kRootFileId;
  auto split = vfs::SplitPath(path);
  if (!split.ok()) {
    return split.status();
  }
  std::string parent = split->first;
  size_t pos = 0;
  while (pos < parent.size()) {
    size_t end = parent.find('/', pos);
    if (end == std::string::npos) {
      end = parent.size();
    }
    std::string component = parent.substr(pos, end - pos);
    if (!component.empty()) {
      FICUS_ASSIGN_OR_RETURN(auto entries, phys->ReadDirectory(dir));
      bool found = false;
      for (const auto& e : entries) {
        if (e.alive && e.name == component) {
          dir = e.file;
          found = true;
        }
      }
      if (!found) {
        return NotFoundError(component);
      }
    }
    pos = end + 1;
  }
  FICUS_ASSIGN_OR_RETURN(auto entries, phys->ReadDirectory(dir));
  for (const auto& e : entries) {
    if (e.alive && e.name == split->second) {
      return e.file;
    }
  }
  return NotFoundError(split->second);
}

void Stat(Shell& shell, const std::string& path) {
  auto file = ResolveFileId(shell, path);
  if (!file.ok()) {
    std::printf("stat: %s\n", file.status().ToString().c_str());
    return;
  }
  std::printf("%s  (file-id %s)\n", path.c_str(), file->ToString().c_str());
  for (repl::ReplicaId replica : shell.hosts[shell.current]->ReplicasOf(shell.volume)) {
    auto api = shell.hosts[shell.current]->Access(shell.volume, replica);
    if (!api.ok()) {
      std::printf("  replica %u: %s\n", replica, api.status().ToString().c_str());
      continue;
    }
    auto attrs = (*api)->GetAttributes(*file);
    if (!attrs.ok()) {
      std::printf("  replica %u: %s\n", replica, attrs.status().ToString().c_str());
      continue;
    }
    std::printf("  replica %u: vv=%s%s\n", replica, attrs->vv.ToString().c_str(),
                attrs->conflict ? "  [CONFLICT]" : "");
  }
}

}  // namespace

int main() {
  Shell shell;
  for (int i = 0; i < 3; ++i) {
    shell.hosts.push_back(shell.cluster.AddHost("h" + std::to_string(i)));
  }
  auto volume = shell.cluster.CreateVolume(shell.hosts);
  if (!volume.ok()) {
    std::fprintf(stderr, "cluster setup failed: %s\n", volume.status().ToString().c_str());
    return 1;
  }
  shell.volume = *volume;
  std::printf("Ficus shell — 3 hosts (h0 h1 h2), one volume, a replica on each.\n");
  std::printf("Type 'help' for commands.\n");

  std::string line;
  for (;;) {
    std::printf("ficus[%s]> ", shell.hosts[shell.current]->name().c_str());
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      std::printf("\n");
      break;
    }
    std::vector<std::string> tokens = Split(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& cmd = tokens[0];
    repl::LogicalLayer* fs = shell.fs();
    if (fs == nullptr) {
      std::printf("no reachable replica for this host right now\n");
      continue;
    }

    if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "ls") {
      auto entries = vfs::ListDir(fs, tokens.size() > 1 ? tokens[1] : "");
      if (!entries.ok()) {
        std::printf("ls: %s\n", entries.status().ToString().c_str());
        continue;
      }
      for (const auto& e : *entries) {
        std::printf("  %s%s\n", e.name.c_str(),
                    e.type == vfs::VnodeType::kDirectory     ? "/"
                    : e.type == vfs::VnodeType::kGraftPoint ? "@"
                    : e.type == vfs::VnodeType::kSymlink    ? " ->"
                                                            : "");
      }
    } else if (cmd == "write" && tokens.size() >= 3) {
      Status status = vfs::WriteFileAt(fs, tokens[1], Rest(tokens, 2));
      if (!status.ok()) {
        std::printf("write: %s\n", status.ToString().c_str());
      }
    } else if (cmd == "cat" && tokens.size() == 2) {
      auto contents = vfs::ReadFileAt(fs, tokens[1]);
      if (contents.ok()) {
        std::printf("%s\n", contents->c_str());
      } else {
        std::printf("cat: %s\n", contents.status().ToString().c_str());
      }
    } else if (cmd == "mkdir" && tokens.size() == 2) {
      Status status = vfs::MkdirAll(fs, tokens[1]);
      if (!status.ok()) {
        std::printf("mkdir: %s\n", status.ToString().c_str());
      }
    } else if (cmd == "rm" && tokens.size() == 2) {
      Status status = vfs::RemovePath(fs, tokens[1]);
      if (!status.ok()) {
        std::printf("rm: %s\n", status.ToString().c_str());
      }
    } else if (cmd == "mv" && tokens.size() == 3) {
      Status status = vfs::RenamePath(fs, tokens[1], tokens[2]);
      if (!status.ok()) {
        std::printf("mv: %s\n", status.ToString().c_str());
      }
    } else if (cmd == "stat" && tokens.size() == 2) {
      Stat(shell, tokens[1]);
    } else if (cmd == "host" && tokens.size() == 2) {
      bool found = false;
      for (size_t i = 0; i < shell.hosts.size(); ++i) {
        if (shell.hosts[i]->name() == tokens[1]) {
          shell.current = i;
          found = true;
        }
      }
      if (!found) {
        std::printf("no such host\n");
      }
    } else if (cmd == "hosts") {
      for (size_t i = 0; i < shell.hosts.size(); ++i) {
        std::printf("  %s%s\n", shell.hosts[i]->name().c_str(),
                    i == shell.current ? "  (current)" : "");
      }
    } else if (cmd == "partition") {
      std::vector<sim::FicusHost*> left;
      std::vector<sim::FicusHost*> right;
      bool after_slash = false;
      bool bad = false;
      for (size_t i = 1; i < tokens.size(); ++i) {
        if (tokens[i] == "/") {
          after_slash = true;
          continue;
        }
        sim::FicusHost* host = shell.HostByName(tokens[i]);
        if (host == nullptr) {
          std::printf("no such host: %s\n", tokens[i].c_str());
          bad = true;
          break;
        }
        (after_slash ? right : left).push_back(host);
      }
      if (!bad && after_slash) {
        shell.cluster.Partition({left, right});
        std::printf("network partitioned\n");
      } else if (!bad) {
        std::printf("usage: partition h0 / h1 h2\n");
      }
    } else if (cmd == "heal") {
      shell.cluster.Heal();
      std::printf("network healed\n");
    } else if (cmd == "propagate") {
      Status status = shell.cluster.RunPropagationEverywhere();
      std::printf("propagation: %s\n", status.ToString().c_str());
    } else if (cmd == "reconcile") {
      auto rounds = shell.cluster.ReconcileUntilQuiescent();
      if (rounds.ok()) {
        std::printf("quiescent after %d round(s)\n", rounds.value());
      } else {
        std::printf("reconcile: %s\n", rounds.status().ToString().c_str());
      }
    } else if (cmd == "fsck") {
      for (sim::FicusHost* host : shell.hosts) {
        for (repl::PhysicalLayer* layer : host->registry().AllLocal()) {
          auto ufs_problems = host->ufs().Check();
          auto ficus_problems = layer->CheckConsistency();
          size_t count = (ufs_problems.ok() ? ufs_problems->size() : 1) +
                         (ficus_problems.ok() ? ficus_problems->size() : 1);
          std::printf("  [%s] replica %u: %zu problem(s)\n", host->name().c_str(),
                      layer->replica_id(), count);
          if (ufs_problems.ok()) {
            for (const auto& p : *ufs_problems) {
              std::printf("    ufs: %s\n", p.c_str());
            }
          }
          if (ficus_problems.ok()) {
            for (const auto& p : *ficus_problems) {
              std::printf("    ficus: %s\n", p.c_str());
            }
          }
        }
      }
    } else if (cmd == "orphans") {
      for (sim::FicusHost* host : shell.hosts) {
        for (repl::PhysicalLayer* layer : host->registry().AllLocal()) {
          auto orphans = layer->OrphanNames();
          if (orphans.ok() && !orphans->empty()) {
            for (const auto& name : *orphans) {
              std::printf("  [%s] %s\n", host->name().c_str(), name.c_str());
            }
          }
        }
      }
    } else if (cmd == "conflicts") {
      for (sim::FicusHost* host : shell.hosts) {
        for (const auto& record : host->conflict_log().records()) {
          std::printf("  [%s] %s %s (local r%u vs remote r%u)\n", host->name().c_str(),
                      record.kind == repl::ConflictKind::kFileUpdate      ? "file-conflict"
                      : record.kind == repl::ConflictKind::kNameCollision ? "name-collision"
                                                                          : "dir-repair",
                      record.id.ToString().c_str(), record.local_replica,
                      record.remote_replica);
        }
      }
    } else if (cmd == "resolve" && tokens.size() >= 3) {
      auto file = ResolveFileId(shell, tokens[1]);
      if (!file.ok()) {
        std::printf("resolve: %s\n", file.status().ToString().c_str());
        continue;
      }
      std::string text = Rest(tokens, 2);
      Status status =
          fs->ResolveFileConflict(*file, std::vector<uint8_t>(text.begin(), text.end()));
      std::printf("resolve: %s\n", status.ToString().c_str());
    } else {
      std::printf("unknown command (try 'help')\n");
    }
  }
  return 0;
}
