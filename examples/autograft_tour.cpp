// Volumes and autografting (paper section 4): a university-style namespace
// where department volumes live on different storage sites and are grafted
// into a campus root volume. A workstation that stores nothing walks the
// whole tree; volumes are located and grafted on demand, and idle grafts
// are quietly pruned.
//
//   $ ./examples/autograft_tour
#include <cstdio>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"
#include "src/vol/graft.h"

using namespace ficus;  // NOLINT

int main() {
  sim::Cluster cluster;
  sim::FicusHost* workstation = cluster.AddHost("workstation");
  sim::FicusHost* cs_server = cluster.AddHost("cs-server");
  sim::FicusHost* math_server = cluster.AddHost("math-server");
  sim::FicusHost* campus_server = cluster.AddHost("campus-server");

  // The campus root volume lives on campus-server (and the workstation
  // learns its location, like an fstab entry).
  auto campus = cluster.CreateVolume({campus_server});
  // Department volumes live on their own servers, replicated where the
  // departments choose.
  auto cs_vol = cluster.CreateVolume({cs_server, campus_server});
  auto math_vol = cluster.CreateVolume({math_server});

  // Graft points in the campus root: /cs and /math. A graft point names
  // the volume and its <replica, storage site> pairs — stored as ordinary
  // directory entries, replicated and reconciled like everything else.
  repl::PhysicalLayer* campus_phys = campus_server->registry().LocalReplica(*campus);
  vol::GraftPointInfo cs_info;
  cs_info.volume = *cs_vol;
  cs_info.replicas = {{1, cs_server->id()}, {2, campus_server->id()}};
  (void)vol::WriteGraftPoint(campus_phys, repl::kRootFileId, "cs", cs_info);
  vol::GraftPointInfo math_info;
  math_info.volume = *math_vol;
  math_info.replicas = {{1, math_server->id()}};
  (void)vol::WriteGraftPoint(campus_phys, repl::kRootFileId, "math", math_info);

  // Populate the department volumes.
  auto cs_fs = cluster.MountEverywhere(cs_server, *cs_vol);
  (void)vfs::MkdirAll(*cs_fs, "courses/os");
  (void)vfs::WriteFileAt(*cs_fs, "courses/os/syllabus.txt",
                         "week 1: stackable layers\nweek 2: optimistic replication\n");
  auto math_fs = cluster.MountEverywhere(math_server, *math_vol);
  (void)vfs::WriteFileAt(*math_fs, "primes.txt", "2 3 5 7 11\n");
  (void)cluster.ReconcileUntilQuiescent();

  // The workstation mounts only the campus root...
  auto fs = cluster.MountEverywhere(workstation, *campus);
  std::printf("workstation mounts the campus volume; grafted volumes: %zu\n",
              workstation->grafts().size());

  // ...and a plain path walk crosses graft points transparently. The first
  // step through /cs locates the cs volume via the graft point records and
  // grafts it on the fly.
  auto syllabus = vfs::ReadFileAt(*fs, "cs/courses/os/syllabus.txt");
  std::printf("\nread /cs/courses/os/syllabus.txt:\n%s",
              syllabus.ok() ? syllabus->c_str() : syllabus.status().ToString().c_str());
  auto primes = vfs::ReadFileAt(*fs, "math/primes.txt");
  std::printf("read /math/primes.txt: %s",
              primes.ok() ? primes->c_str() : primes.status().ToString().c_str());
  std::printf("\ngrafts after the walks: %zu (performed %llu, table hits %llu)\n",
              workstation->grafts().size(),
              static_cast<unsigned long long>(workstation->grafts().grafts_performed()),
              static_cast<unsigned long long>(workstation->grafts().graft_hits()));

  // Availability: cs-server dies, but /cs has a second replica on
  // campus-server; the walk fails over without the client noticing.
  cluster.network().SetHostUp(cs_server->id(), false);
  syllabus = vfs::ReadFileAt(*fs, "cs/courses/os/syllabus.txt");
  std::printf("\nwith cs-server down, /cs still resolves via replica 2: %s\n",
              syllabus.ok() ? "yes" : syllabus.status().ToString().c_str());
  cluster.network().SetHostUp(cs_server->id(), true);

  // Writes through a graft land in the department volume.
  (void)vfs::WriteFileAt(*fs, "math/homework.txt", "prove it\n");
  (void)cluster.ReconcileUntilQuiescent();
  auto hw = vfs::ReadFileAt(*math_fs, "homework.txt");
  std::printf("math-server sees the workstation's write through the graft: %s",
              hw.ok() ? hw->c_str() : hw.status().ToString().c_str());

  // Idle grafts are pruned; the next walk re-grafts silently.
  cluster.Sleep(30 * 60 * kSecond);
  int pruned = workstation->PruneGrafts(10 * 60 * kSecond);
  std::printf("\nafter 30 idle minutes, pruned %d graft(s); table size %zu\n", pruned,
              workstation->grafts().size());
  primes = vfs::ReadFileAt(*fs, "math/primes.txt");
  std::printf("next walk re-grafts transparently: %s", primes.ok() ? primes->c_str() : "NO\n");
  return 0;
}
