// Quickstart: a two-host Ficus cluster in ~40 lines.
//
// Builds two simulated hosts, creates a volume replicated on both, writes
// a file through host A's logical layer, lets the update-notification /
// propagation machinery carry it to host B, and reads it back from B's
// own replica while A is unreachable.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

using namespace ficus;  // NOLINT — examples favour brevity

int main() {
  // A cluster owns the simulated clock, network, and hosts. Each host has
  // its own disk, buffer cache, UFS, and Ficus layers (Figure 1's stack).
  sim::Cluster cluster;
  sim::FicusHost* alice = cluster.AddHost("alice");
  sim::FicusHost* bob = cluster.AddHost("bob");

  // One volume, one replica on each host. Replicas start in sync.
  auto volume = cluster.CreateVolume({alice, bob});
  if (!volume.ok()) {
    std::fprintf(stderr, "CreateVolume: %s\n", volume.status().ToString().c_str());
    return 1;
  }

  // Mount on alice and use it like a filesystem. The logical layer gives
  // the single-copy abstraction; alice's local replica serves the writes.
  auto fs = cluster.MountEverywhere(alice, *volume);
  (void)vfs::MkdirAll(*fs, "notes");
  (void)vfs::WriteFileAt(*fs, "notes/todo.txt", "1. reproduce Ficus\n2. profit\n");
  std::printf("alice wrote notes/todo.txt\n");

  // The write multicast an update notification; bob's physical layer has
  // it queued in the new-version cache. Run bob's propagation daemon.
  (void)cluster.RunPropagationEverywhere();

  // Prove bob holds the data himself: cut him off and read.
  cluster.Partition({{bob}});
  auto bob_fs = cluster.MountEverywhere(bob, *volume);
  auto contents = vfs::ReadFileAt(*bob_fs, "notes/todo.txt");
  if (!contents.ok()) {
    std::fprintf(stderr, "bob read failed: %s\n", contents.status().ToString().c_str());
    return 1;
  }
  std::printf("bob (fully partitioned) reads:\n%s", contents->c_str());

  // One-copy availability: bob can even update while alone...
  (void)vfs::WriteFileAt(*bob_fs, "notes/from-bob.txt", "hello from the island\n");
  std::printf("bob wrote notes/from-bob.txt during the partition\n");

  // ...and reconciliation merges everything after the network heals.
  cluster.Heal();
  (void)cluster.ReconcileUntilQuiescent();
  auto merged = vfs::ReadFileAt(*fs, "notes/from-bob.txt");
  std::printf("alice reads bob's partition-time file: %s",
              merged.ok() ? merged->c_str() : merged.status().ToString().c_str());
  return 0;
}
