// Why one-copy availability? (paper section 1)
//
// Runs the same partitioned-office week twice: once under Ficus's
// one-copy availability (simulated for real on the cluster), and once
// evaluating what each serializable policy WOULD have allowed, then
// prints the analytic availability tables.
//
//   $ ./examples/availability_study
#include <cstdio>
#include <vector>

#include "src/baseline/availability.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

using namespace ficus;  // NOLINT

int main() {
  // --- Part 1: a week at a three-site company, with nightly WAN outages.
  std::printf("Part 1 — a week of work under nightly partitions\n");
  std::printf("three sites, one volume replica each; every 'night' the WAN\n");
  std::printf("splits HQ away from the branches; every 'day' it heals.\n\n");

  sim::Cluster cluster;
  sim::FicusHost* hq = cluster.AddHost("hq");
  sim::FicusHost* branch1 = cluster.AddHost("branch1");
  sim::FicusHost* branch2 = cluster.AddHost("branch2");
  auto volume = cluster.CreateVolume({hq, branch1, branch2});
  auto hq_fs = cluster.MountEverywhere(hq, *volume);
  auto b1_fs = cluster.MountEverywhere(branch1, *volume);
  (void)vfs::MkdirAll(*hq_fs, "reports");
  (void)cluster.ReconcileUntilQuiescent();

  int ficus_writes_ok = 0;
  int quorum_would_deny = 0;  // what majority voting would have refused
  baseline::MajorityVotingPolicy majority;
  for (int day = 0; day < 5; ++day) {
    // Night: HQ cut off. HQ's replica is 1 of 3 — no majority there.
    cluster.Partition({{hq}, {branch1, branch2}});
    std::string hq_report = "reports/day" + std::to_string(day) + "-hq.txt";
    if (vfs::WriteFileAt(*hq_fs, hq_report, "hq nightly numbers\n").ok()) {
      ++ficus_writes_ok;
    }
    // Majority voting sees 1 of 3 replicas from HQ's side.
    if (!majority.CanUpdate({true, false, false})) {
      ++quorum_would_deny;
    }
    std::string branch_report = "reports/day" + std::to_string(day) + "-branch.txt";
    if (vfs::WriteFileAt(*b1_fs, branch_report, "branch nightly numbers\n").ok()) {
      ++ficus_writes_ok;
    }
    // Day: heal, reconcile, everyone sees everything.
    cluster.Heal();
    (void)cluster.ReconcileUntilQuiescent();
  }
  auto listing = vfs::ListDir(*hq_fs, "reports");
  std::printf("Ficus: %d/%d partition-time writes succeeded; %zu reports visible\n",
              ficus_writes_ok, 10, listing.ok() ? listing->size() : 0);
  std::printf("majority voting would have denied %d of HQ's 5 nightly writes\n",
              quorum_would_deny);
  size_t conflicts = hq->conflict_log().CountOf(repl::ConflictKind::kFileUpdate);
  std::printf("file conflicts produced by the week: %zu (disjoint files — none)\n\n",
              conflicts);

  // --- Part 2: the analytic comparison behind the anecdote.
  std::printf("Part 2 — exact availability, n=3 replicas\n");
  std::printf("%-28s %8s | %12s %14s\n", "policy", "p", "read avail", "update avail");
  baseline::OneCopyPolicy one_copy;
  baseline::PrimaryCopyPolicy primary(0);
  baseline::QuorumConsensusPolicy quorum(2, 2);
  for (double p : {0.9, 0.99}) {
    for (const baseline::ReplicationPolicy* policy :
         {static_cast<const baseline::ReplicationPolicy*>(&one_copy),
          static_cast<const baseline::ReplicationPolicy*>(&primary),
          static_cast<const baseline::ReplicationPolicy*>(&majority),
          static_cast<const baseline::ReplicationPolicy*>(&quorum)}) {
      auto result = baseline::ComputeExact(*policy, 3, p);
      if (result.ok()) {
        std::printf("%-28s %8.2f | %12.6f %14.6f\n", policy->Name().c_str(), p,
                    result->read, result->update);
      }
    }
    std::printf("\n");
  }
  std::printf("The price Ficus pays is not availability but the possibility of\n"
              "conflicts — which part 1 shows are rare when work is disjoint, are\n"
              "always detected, and (for directories) repair themselves.\n");
  return 0;
}
