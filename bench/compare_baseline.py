#!/usr/bin/env python3
"""Perf-regression gate: compare a fresh BENCH_*.json against a committed
baseline.

Usage: compare_baseline.py <current.json> <baseline.json> [--tolerance 0.20]

Walks both JSON trees in lockstep and compares every numeric leaf. A leaf
fails when it differs from the baseline by more than the relative
tolerance AND by more than a small absolute slack (so counters that sit
near zero — e.g. a savings percentage of 0.0 vs 0.4 — do not trip the
gate on noise). Structural mismatches (missing/extra keys, different
array lengths) fail outright: a bench that silently stops emitting a
section is itself a regression.

Exit status: 0 = within tolerance, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import sys

ABS_SLACK = 4.0  # absolute difference ignored regardless of ratio

# Wall-clock leaves vary with the machine and load; the gate only holds
# deterministic counters (pulls, bytes, RPCs) to the baseline.
VOLATILE_KEYS = {"wall_ms"}


def compare(current, baseline, tolerance, path, failures):
    if isinstance(baseline, dict):
        if not isinstance(current, dict):
            failures.append(f"{path}: expected object, got {type(current).__name__}")
            return
        for key in baseline:
            if key in VOLATILE_KEYS:
                continue
            if key not in current:
                failures.append(f"{path}.{key}: missing from current output")
                continue
            compare(current[key], baseline[key], tolerance, f"{path}.{key}", failures)
        for key in current:
            if key not in baseline:
                failures.append(f"{path}.{key}: not present in baseline")
    elif isinstance(baseline, list):
        if not isinstance(current, list):
            failures.append(f"{path}: expected array, got {type(current).__name__}")
            return
        if len(current) != len(baseline):
            failures.append(f"{path}: length {len(current)} != baseline {len(baseline)}")
            return
        for i, (c, b) in enumerate(zip(current, baseline)):
            compare(c, b, tolerance, f"{path}[{i}]", failures)
    elif isinstance(baseline, bool) or not isinstance(baseline, (int, float)):
        if current != baseline:
            failures.append(f"{path}: {current!r} != baseline {baseline!r}")
    else:
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            failures.append(f"{path}: expected number, got {current!r}")
            return
        diff = abs(current - baseline)
        if diff <= ABS_SLACK:
            return
        limit = tolerance * max(abs(baseline), 1.0)
        if diff > limit:
            failures.append(
                f"{path}: {current} vs baseline {baseline} "
                f"(diff {diff:.2f} > allowed {limit:.2f})"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative deviation per numeric leaf")
    args = parser.parse_args()

    try:
        with open(args.current) as f:
            current = json.load(f)
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"compare_baseline: {e}", file=sys.stderr)
        return 2

    failures = []
    compare(current, baseline, args.tolerance, "$", failures)
    if failures:
        print(f"PERF GATE FAILED ({len(failures)} deviations "
              f"beyond ±{args.tolerance:.0%}):")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"perf gate ok: {args.current} within ±{args.tolerance:.0%} of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
