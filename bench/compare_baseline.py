#!/usr/bin/env python3
"""Perf-regression gate: compare fresh BENCH_*.json files against their
committed baselines.

Usage (multi-bench form, what CI runs):
  compare_baseline.py --bench propagation=build/BENCH_propagation.json:bench/baselines/propagation.json \
                      --bench lookup=build/BENCH_lookup.json:bench/baselines/lookup.json \
                      [--tolerance 0.20] [--summary $GITHUB_STEP_SUMMARY]

Usage (single-pair form, kept for local runs):
  compare_baseline.py <current.json> <baseline.json> [--tolerance 0.20]

Walks each current/baseline JSON pair in lockstep and compares every
numeric leaf. A leaf fails when it differs from the baseline by more than
the relative tolerance AND by more than a small absolute slack (so
counters that sit near zero — e.g. a savings percentage of 0.0 vs 0.4 —
do not trip the gate on noise). Structural mismatches (missing/extra
keys, different array lengths) fail outright: a bench that silently stops
emitting a section is itself a regression.

--summary appends a per-metric markdown diff table (every numeric leaf:
baseline, current, delta) to the given file — point it at
$GITHUB_STEP_SUMMARY so the job summary shows the whole matrix, not just
the failures.

Exit status: 0 = within tolerance, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import sys

ABS_SLACK = 4.0  # absolute difference ignored regardless of ratio

# Wall-clock leaves vary with the machine and load; the gate only holds
# deterministic counters (pulls, bytes, RPCs, hits) to the baseline.
# "wall_ms"/"*_us" are timings; "speedup" is a ratio of timings.
VOLATILE_KEYS = {"wall_ms", "speedup"}


def is_volatile(key):
    return key in VOLATILE_KEYS or key.endswith("_us") or key.endswith("_ms")


def compare(current, baseline, tolerance, path, failures, rows):
    if isinstance(baseline, dict):
        if not isinstance(current, dict):
            failures.append(f"{path}: expected object, got {type(current).__name__}")
            return
        for key in baseline:
            if is_volatile(key):
                continue
            if key not in current:
                failures.append(f"{path}.{key}: missing from current output")
                continue
            compare(current[key], baseline[key], tolerance, f"{path}.{key}",
                    failures, rows)
        for key in current:
            if key not in baseline and not is_volatile(key):
                failures.append(f"{path}.{key}: not present in baseline")
    elif isinstance(baseline, list):
        if not isinstance(current, list):
            failures.append(f"{path}: expected array, got {type(current).__name__}")
            return
        if len(current) != len(baseline):
            failures.append(f"{path}: length {len(current)} != baseline {len(baseline)}")
            return
        for i, (c, b) in enumerate(zip(current, baseline)):
            compare(c, b, tolerance, f"{path}[{i}]", failures, rows)
    elif isinstance(baseline, bool) or not isinstance(baseline, (int, float)):
        if current != baseline:
            failures.append(f"{path}: {current!r} != baseline {baseline!r}")
    else:
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            failures.append(f"{path}: expected number, got {current!r}")
            return
        diff = abs(current - baseline)
        delta_pct = (100.0 * (current - baseline) / baseline) if baseline else 0.0
        ok = diff <= ABS_SLACK or diff <= tolerance * max(abs(baseline), 1.0)
        rows.append((path, baseline, current, delta_pct, ok))
        if not ok:
            limit = tolerance * max(abs(baseline), 1.0)
            failures.append(
                f"{path}: {current} vs baseline {baseline} "
                f"(diff {diff:.2f} > allowed {limit:.2f})"
            )


def write_summary(summary_path, bench_tables, tolerance):
    with open(summary_path, "a") as f:
        f.write(f"## Perf gate (±{tolerance:.0%} on deterministic counters)\n\n")
        for name, rows, failures in bench_tables:
            verdict = "✅ pass" if not failures else f"❌ {len(failures)} deviation(s)"
            f.write(f"### {name} — {verdict}\n\n")
            f.write("| metric | baseline | current | delta |\n")
            f.write("|---|---:|---:|---:|\n")
            for path, base, cur, delta_pct, ok in rows:
                flag = "" if ok else " ⚠️"
                f.write(f"| `{path}` | {base:g} | {cur:g} | {delta_pct:+.1f}%{flag} |\n")
            for line in failures:
                if "vs baseline" not in line:  # structural failures have no table row
                    f.write(f"\n- ⚠️ {line}")
            f.write("\n")


def run_pair(name, current_path, baseline_path, tolerance):
    with open(current_path) as f:
        current = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)
    failures, rows = [], []
    compare(current, baseline, tolerance, "$", failures, rows)
    return name, rows, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("pair", nargs="*",
                        help="legacy single-pair form: <current.json> <baseline.json>")
    parser.add_argument("--bench", action="append", default=[],
                        metavar="NAME=CURRENT:BASELINE",
                        help="one gated bench; repeatable")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative deviation per numeric leaf")
    parser.add_argument("--summary", default=None,
                        help="file to append a markdown diff table to "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args()

    pairs = []
    for spec in args.bench:
        try:
            name, files = spec.split("=", 1)
            current_path, baseline_path = files.split(":", 1)
        except ValueError:
            print(f"compare_baseline: bad --bench spec {spec!r} "
                  "(want NAME=CURRENT:BASELINE)", file=sys.stderr)
            return 2
        pairs.append((name, current_path, baseline_path))
    if args.pair:
        if len(args.pair) != 2:
            print("compare_baseline: legacy form takes exactly two paths",
                  file=sys.stderr)
            return 2
        pairs.append(("bench", args.pair[0], args.pair[1]))
    if not pairs:
        print("compare_baseline: nothing to compare (no --bench, no pair)",
              file=sys.stderr)
        return 2

    bench_tables = []
    total_failures = 0
    for name, current_path, baseline_path in pairs:
        try:
            result = run_pair(name, current_path, baseline_path, args.tolerance)
        except (OSError, json.JSONDecodeError) as e:
            print(f"compare_baseline: {name}: {e}", file=sys.stderr)
            return 2
        bench_tables.append(result)
        _, _, failures = result
        if failures:
            print(f"PERF GATE FAILED [{name}] ({len(failures)} deviations "
                  f"beyond ±{args.tolerance:.0%}):")
            for line in failures:
                print(f"  {line}")
            total_failures += len(failures)
        else:
            print(f"perf gate ok [{name}]: within ±{args.tolerance:.0%} of "
                  f"{baseline_path}")

    if args.summary:
        try:
            write_summary(args.summary, bench_tables, args.tolerance)
        except OSError as e:
            print(f"compare_baseline: summary: {e}", file=sys.stderr)
            return 2
    return 1 if total_failures else 0


if __name__ == "__main__":
    sys.exit(main())
