// Experiments R1 / R2 (paper section 3.3): directory reconciliation cost
// scaling, and the non-blocking property of the subtree protocol
// ("execution proceeds concurrently with respect to normal file activity,
// so that client service is not blocked or impeded").
#include <chrono>
#include <cstdio>
#include <memory>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// R1: one directory with `entries` files; `divergence` fraction of them
// created only on host 0 while partitioned. Measures host 1's
// reconciliation time and entries examined.
void SweepDirectorySize() {
  std::printf("R1 — directory reconciliation cost vs size & divergence\n");
  std::printf("%10s %12s %18s %14s\n", "entries", "divergent", "entries examined",
              "time (ms)");
  for (int entries : {10, 100, 500, 1500}) {
    for (double divergence : {0.1, 0.5}) {
      sim::Cluster cluster;
      sim::HostConfig host_config;
      host_config.disk_blocks = 1 << 16;
      host_config.inode_count = 1 << 15;
      host_config.cache_blocks = 1 << 13;
      sim::FicusHost* a = cluster.AddHost("a", host_config);
      sim::FicusHost* b = cluster.AddHost("b", host_config);
      auto volume = cluster.CreateVolume({a, b});
      auto logical = cluster.MountEverywhere(a, *volume);
      int shared = static_cast<int>(entries * (1.0 - divergence));
      for (int i = 0; i < shared; ++i) {
        (void)vfs::WriteFileAt(*logical, "f" + std::to_string(i), "x");
      }
      (void)cluster.ReconcileUntilQuiescent(4);
      cluster.Partition({{a}, {b}});
      for (int i = shared; i < entries; ++i) {
        (void)vfs::WriteFileAt(*logical, "f" + std::to_string(i), "x");
      }
      cluster.Heal();

      const repl::ReconcileStats* before = b->reconcile_stats(*volume);
      uint64_t examined_before = before != nullptr ? before->entries_examined : 0;
      auto start = std::chrono::steady_clock::now();
      (void)b->RunReconciliation();
      double ms = MillisSince(start);
      const repl::ReconcileStats* after = b->reconcile_stats(*volume);
      uint64_t examined = (after != nullptr ? after->entries_examined : 0) - examined_before;
      std::printf("%10d %11.0f%% %18llu %14.2f\n", entries, divergence * 100,
                  static_cast<unsigned long long>(examined), ms);
    }
  }
  std::printf("\n");
}

// R2: reconcile a populated tree while a client keeps issuing operations;
// client ops must all succeed mid-reconciliation (nothing locks).
void NonBlockingSubtree() {
  std::printf("R2 — client activity during subtree reconciliation\n");
  sim::Cluster cluster;
  sim::HostConfig host_config;
  host_config.disk_blocks = 1 << 16;
  host_config.inode_count = 1 << 15;
  host_config.cache_blocks = 1 << 13;
  sim::FicusHost* a = cluster.AddHost("a", host_config);
  sim::FicusHost* b = cluster.AddHost("b", host_config);
  auto volume = cluster.CreateVolume({a, b});
  auto la = cluster.MountEverywhere(a, *volume);
  auto lb = cluster.MountEverywhere(b, *volume);
  for (int d = 0; d < 10; ++d) {
    (void)vfs::MkdirAll(*la, "d" + std::to_string(d));
    for (int f = 0; f < 50; ++f) {
      (void)vfs::WriteFileAt(*la, "d" + std::to_string(d) + "/f" + std::to_string(f),
                             std::string(512, 'x'));
    }
  }
  (void)vfs::MkdirAll(*la, "live");

  // Interleave: each reconciliation pass on b is followed by client ops on
  // both hosts; every client op must succeed.
  int client_ops = 0;
  int client_failures = 0;
  auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < 4; ++round) {
    (void)b->RunReconciliation();
    for (int i = 0; i < 25; ++i) {
      ++client_ops;
      if (!vfs::WriteFileAt(*la, "live/a" + std::to_string(round * 25 + i), "during").ok()) {
        ++client_failures;
      }
      ++client_ops;
      if (!vfs::OpenReadClose(*lb, "d0/f0").ok()) {
        ++client_failures;
      }
    }
  }
  double ms = MillisSince(start);
  (void)cluster.ReconcileUntilQuiescent(8);
  bool converged = vfs::Exists(*lb, "live/a0") && vfs::Exists(*lb, "live/a99");
  std::printf("  500-file tree, 4 interleaved reconcile passes: %.1f ms\n", ms);
  std::printf("  client ops during reconciliation: %d, failures: %d\n", client_ops,
              client_failures);
  std::printf("  post-run convergence of files written mid-reconcile: %s\n",
              converged ? "yes" : "NO");
  std::printf("\nShape check vs paper: cost grows with directory size and divergent\n"
              "fraction; client operations never block or fail during the\n"
              "reconciliation protocol (section 3.3).\n");
}

}  // namespace

int main() {
  std::printf("Experiments R1/R2 — reconciliation (section 3.3)\n\n");
  SweepDirectorySize();
  NonBlockingSubtree();
  return 0;
}
