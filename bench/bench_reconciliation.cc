// Experiments R1 / R2 (paper section 3.3): reconciliation cost scaling
// and the non-blocking property of the subtree protocol ("execution
// proceeds concurrently with respect to normal file activity, so that
// client service is not blocked or impeded").
//
// R1 is the Merkle-digest headline sweep: the same namespace (10^3..10^6
// files spread over 1024-entry directories) reconciled under the original
// full entry-replay walk and under digest-guided mode, at 0 / 0.1 / 1 /
// 10 % dirty fractions. The full walk pays O(files) RPCs even when
// nothing changed; the digest walk exchanges per-level subtree digests
// and descends only into differing directories, so its RPC count tracks
// the delta. RPC and prune counters are deterministic and gated against
// bench/baselines/reconciliation.json; wall-clock leaves (_ms keys) are
// volatile.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/repl/physical.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

// Files per directory in the R1 namespace; the tree is root -> d<k> ->
// f<i>, so pruning has real structure to work with (a flat root would
// make the digest walk all-or-nothing).
constexpr size_t kFanout = 1024;

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// The full sweep seeds a million-file replica pair twice; phase marks on
// stderr (unbuffered, unlike the piped stdout tables) show where the
// time goes.
void Progress(const char* phase, size_t n) {
  static const auto t0 = std::chrono::steady_clock::now();
  std::fprintf(stderr, "[%7.1fs] %s (n=%zu)\n", MillisSince(t0) / 1e3, phase, n);
}

// Host sized for a `files`-entry namespace on BOTH replicas, attributes
// in the inode extension area so the sweep is bounded by the protocol,
// not by artifacts of the default tiny-disk config.
sim::HostConfig ConfigFor(size_t files, bool digest_guided) {
  sim::HostConfig config;
  config.inode_count = static_cast<uint32_t>(files + files / 4 + 8192);
  config.disk_blocks =
      std::max<uint32_t>(16 * 1024, static_cast<uint32_t>(files / 2) + 16384);
  config.cache_blocks = files >= 100000 ? 16384 : 2048;
  config.physical.attr_placement = repl::AttrPlacement::kInode;
  config.reconcile.digest_guided = digest_guided;
  return config;
}

std::string SlotPath(size_t i) {
  return "d" + std::to_string(i / kFanout) + "/f" + std::to_string(i);
}

// One two-replica volume in a given reconciliation mode, seeded with
// `files` regular files and fully converged.
struct ModeCluster {
  std::unique_ptr<sim::Cluster> cluster;
  sim::FicusHost* a = nullptr;
  sim::FicusHost* b = nullptr;
  repl::VolumeId volume;
  repl::LogicalLayer* logical_a = nullptr;  // client mount on the writer host
};

ModeCluster MakeSeeded(size_t files, bool digest_guided) {
  Progress(digest_guided ? "seed digest-mode pair" : "seed full-walk pair", files);
  ModeCluster mc;
  mc.cluster = std::make_unique<sim::Cluster>();
  mc.a = mc.cluster->AddHost("a", ConfigFor(files, digest_guided));
  mc.b = mc.cluster->AddHost("b", ConfigFor(files, digest_guided));
  mc.volume = *mc.cluster->CreateVolume({mc.a, mc.b});
  mc.logical_a = *mc.cluster->MountEverywhere(mc.a, mc.volume);

  auto* phys = dynamic_cast<repl::PhysicalLayer*>(*mc.a->Access(mc.volume, 1));
  const size_t dirs = (files + kFanout - 1) / kFanout;
  for (size_t d = 0; d < dirs; ++d) {
    auto dir = phys->CreateChild(repl::kRootFileId, "d" + std::to_string(d),
                                 repl::FicusFileType::kDirectory, /*owner_uid=*/1);
    if (!dir.ok()) {
      std::fprintf(stderr, "mkdir d%zu failed: %s\n", d, dir.status().ToString().c_str());
      std::exit(2);
    }
    std::vector<std::string> names;
    names.reserve(kFanout);
    for (size_t i = d * kFanout; i < std::min(files, (d + 1) * kFanout); ++i) {
      names.push_back("f" + std::to_string(i));
    }
    auto created =
        phys->CreateChildren(*dir, names, repl::FicusFileType::kRegular, /*owner_uid=*/1);
    if (!created.ok()) {
      std::fprintf(stderr, "populate d%zu failed: %s\n", d,
                   created.status().ToString().c_str());
      std::exit(2);
    }
  }
  auto rounds = mc.cluster->ReconcileUntilQuiescent(12);
  if (!rounds.ok()) {
    std::fprintf(stderr, "seed reconcile failed: %s\n", rounds.status().ToString().c_str());
    std::exit(2);
  }
  return mc;
}

// Writes `count` files (evenly strided across the namespace) on host a
// while b is partitioned away, then heals — the divergence one
// reconciliation pass on b must absorb.
void DirtyFiles(ModeCluster& mc, size_t files, size_t count, int round) {
  if (count == 0) {
    return;
  }
  mc.cluster->Partition({{mc.a}, {mc.b}});
  const size_t stride = std::max<size_t>(1, files / count);
  const std::string content = "dirty-r" + std::to_string(round);
  for (size_t j = 0; j < count; ++j) {
    const std::string path = SlotPath((j * stride) % files);
    auto written = vfs::WriteFileAt(mc.logical_a, path, content);
    if (!written.ok()) {
      std::fprintf(stderr, "dirty %s failed: %s\n", path.c_str(),
                   written.ToString().c_str());
      std::exit(2);
    }
  }
  mc.cluster->Heal();
}

struct PassStats {
  uint64_t rpcs = 0;          // remote calls in the measured pass, either mode
  uint64_t pruned_dirs = 0;   // directories skipped on a digest match
  uint64_t digest_match = 0;
  uint64_t digest_mismatch = 0;
  double wall_ms = 0;
};

// One reconciliation pass on host b (the stale replica), with the
// reconciler's counters differenced around it.
PassStats MeasurePass(ModeCluster& mc) {
  const repl::ReconcileStats* stats = mc.b->reconcile_stats(mc.volume);
  repl::ReconcileStats before = stats != nullptr ? *stats : repl::ReconcileStats{};
  auto start = std::chrono::steady_clock::now();
  auto run = mc.b->RunReconciliation();
  PassStats pass;
  pass.wall_ms = MillisSince(start);
  if (!run.ok()) {
    std::fprintf(stderr, "measured reconcile failed: %s\n", run.ToString().c_str());
    std::exit(2);
  }
  stats = mc.b->reconcile_stats(mc.volume);
  if (stats == nullptr) {
    std::fprintf(stderr, "host b has no reconciler for the volume\n");
    std::exit(2);
  }
  pass.rpcs = stats->remote_calls - before.remote_calls;
  pass.pruned_dirs = stats->digest_pruned_dirs - before.digest_pruned_dirs;
  pass.digest_match = stats->digest_match - before.digest_match;
  pass.digest_mismatch = stats->digest_mismatch - before.digest_mismatch;
  return pass;
}

struct SweepRow {
  size_t files = 0;
  double dirty_pct = 0;
  size_t dirty_files = 0;
  PassStats full;
  PassStats digest;
  double rpc_reduction = 0;  // full.rpcs / digest.rpcs (both deterministic)
};

// R2: reconcile a populated tree while a client keeps issuing operations;
// client ops must all succeed mid-reconciliation (nothing locks).
struct NonBlockingResult {
  int client_ops = 0;
  int client_failures = 0;
  bool converged = false;
  double wall_ms = 0;
};

NonBlockingResult NonBlockingSubtree() {
  Progress("R2 non-blocking subtree", 500);
  sim::Cluster cluster;
  sim::FicusHost* a = cluster.AddHost("a", ConfigFor(4096, true));
  sim::FicusHost* b = cluster.AddHost("b", ConfigFor(4096, true));
  auto volume = cluster.CreateVolume({a, b});
  auto la = cluster.MountEverywhere(a, *volume);
  auto lb = cluster.MountEverywhere(b, *volume);
  for (int d = 0; d < 10; ++d) {
    (void)vfs::MkdirAll(*la, "d" + std::to_string(d));
    for (int f = 0; f < 50; ++f) {
      (void)vfs::WriteFileAt(*la, "d" + std::to_string(d) + "/f" + std::to_string(f),
                             std::string(512, 'x'));
    }
  }
  (void)vfs::MkdirAll(*la, "live");

  // Interleave: each reconciliation pass on b is followed by client ops on
  // both hosts; every client op must succeed.
  NonBlockingResult result;
  auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < 4; ++round) {
    (void)b->RunReconciliation();
    for (int i = 0; i < 25; ++i) {
      ++result.client_ops;
      if (!vfs::WriteFileAt(*la, "live/a" + std::to_string(round * 25 + i), "during").ok()) {
        ++result.client_failures;
      }
      ++result.client_ops;
      if (!vfs::OpenReadClose(*lb, "d0/f0").ok()) {
        ++result.client_failures;
      }
    }
  }
  result.wall_ms = MillisSince(start);
  (void)cluster.ReconcileUntilQuiescent(8);
  result.converged = vfs::Exists(*lb, "live/a0") && vfs::Exists(*lb, "live/a99");
  return result;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("FICUS_BENCH_SMOKE") != nullptr;
  std::printf("Experiments R1/R2 — reconciliation (section 3.3)\n\n");

  std::ostringstream json;
  json << "{\"bench\":\"reconciliation\",\"sweep\":[";

  std::printf("R1 — digest-guided vs full-walk RPCs per reconciliation pass\n");
  std::printf("%9s %9s %9s | %12s %12s %10s | %8s %10s %10s\n", "files", "dirty %",
              "dirty", "full RPCs", "digest RPCs", "reduction", "pruned", "full ms",
              "digest ms");
  // FICUS_BENCH_MAX_FILES caps the sweep's largest size (the full 10^6
  // leg seeds two million-file replica pairs and takes the better part of
  // an hour; =100000 covers the acceptance measurement in minutes).
  size_t max_files = SIZE_MAX;
  if (const char* cap = std::getenv("FICUS_BENCH_MAX_FILES")) {
    max_files = static_cast<size_t>(std::strtoull(cap, nullptr, 10));
  }
  std::vector<size_t> sizes = smoke
                                  ? std::vector<size_t>{1000, 10000}
                                  : std::vector<size_t>{1000, 10000, 100000, 1000000};
  std::erase_if(sizes, [max_files](size_t n) { return n > max_files; });
  const std::vector<double> dirty_pcts = {0.0, 0.1, 1.0, 10.0};

  std::vector<SweepRow> rows;
  bool first = true;
  for (size_t files : sizes) {
    // One cluster pair per size, advanced through every dirty fraction:
    // each measured pass leaves the pair converged again, so fractions
    // compose without reseeding the million-file namespace.
    ModeCluster full = MakeSeeded(files, /*digest_guided=*/false);
    ModeCluster digest = MakeSeeded(files, /*digest_guided=*/true);
    int round = 0;
    for (double dirty_pct : dirty_pcts) {
      SweepRow row;
      row.files = files;
      row.dirty_pct = dirty_pct;
      row.dirty_files = static_cast<size_t>(static_cast<double>(files) * dirty_pct / 100.0);
      Progress("R1 measure", row.dirty_files);
      DirtyFiles(full, files, row.dirty_files, round);
      DirtyFiles(digest, files, row.dirty_files, round);
      ++round;
      row.full = MeasurePass(full);
      row.digest = MeasurePass(digest);
      row.rpc_reduction = row.digest.rpcs > 0 ? static_cast<double>(row.full.rpcs) /
                                                    static_cast<double>(row.digest.rpcs)
                                              : 0;
      // No quiescence rounds between fractions: dirty writes land only on
      // host a, and b's measured pass absorbs all of them, so the pair is
      // converged again the moment the measurement ends (the recon
      // differential suite holds both modes to identical state).

      std::printf("%9zu %8.1f%% %9zu | %12llu %12llu %9.1fx | %8llu %10.2f %10.2f\n",
                  row.files, row.dirty_pct, row.dirty_files,
                  static_cast<unsigned long long>(row.full.rpcs),
                  static_cast<unsigned long long>(row.digest.rpcs), row.rpc_reduction,
                  static_cast<unsigned long long>(row.digest.pruned_dirs),
                  row.full.wall_ms, row.digest.wall_ms);
      std::fflush(stdout);  // rows survive a mid-sweep kill when piped
      if (!first) json << ",";
      first = false;
      json << "{\"files\":" << row.files << ",\"dirty_pct\":" << row.dirty_pct
           << ",\"dirty_files\":" << row.dirty_files
           << ",\"full_rpcs\":" << row.full.rpcs
           << ",\"digest_rpcs\":" << row.digest.rpcs
           << ",\"rpc_reduction\":" << row.rpc_reduction
           << ",\"digest_match\":" << row.digest.digest_match
           << ",\"digest_mismatch\":" << row.digest.digest_mismatch
           << ",\"digest_pruned_dirs\":" << row.digest.pruned_dirs
           << ",\"full_ms\":" << row.full.wall_ms
           << ",\"digest_ms\":" << row.digest.wall_ms << "}";
      rows.push_back(row);
    }
  }
  json << "]";

  // Acceptance spotlight: the clean pass at the largest size must show at
  // least 50x fewer RPCs in digest mode — an unchanged replica pair
  // reconciles in O(1) digest exchanges instead of O(files) entry reads.
  double clean_reduction = 0;
  size_t clean_files = 0;
  for (const SweepRow& row : rows) {
    if (row.dirty_files == 0 && row.files >= clean_files) {
      clean_files = row.files;
      clean_reduction = row.rpc_reduction;
    }
  }
  std::printf("\nclean reconcile at %zu files: %.1fx fewer RPCs (acceptance floor 50x)\n",
              clean_files, clean_reduction);
  json << ",\"clean_files\":" << clean_files
       << ",\"clean_rpc_reduction\":" << clean_reduction;

  NonBlockingResult r2 = NonBlockingSubtree();
  std::printf("\nR2 — client activity during subtree reconciliation\n");
  std::printf("  client ops during reconciliation: %d, failures: %d\n", r2.client_ops,
              r2.client_failures);
  std::printf("  post-run convergence of files written mid-reconcile: %s\n",
              r2.converged ? "yes" : "NO");
  json << ",\"nonblocking\":{\"client_ops\":" << r2.client_ops
       << ",\"client_failures\":" << r2.client_failures
       << ",\"converged\":" << (r2.converged ? "true" : "false")
       << ",\"wall_ms\":" << r2.wall_ms << "}";

  json << "}";
  std::ofstream out("BENCH_reconciliation.json");
  out << json.str() << "\n";
  std::printf("\nwrote BENCH_reconciliation.json\n");
  std::printf("\nShape check vs paper: full-walk RPCs grow with directory size even\n"
              "when nothing changed; digest-guided RPCs track the dirty delta, and\n"
              "client operations never block or fail during the protocol (3.3).\n");
  return (clean_reduction >= 50.0 && r2.client_failures == 0 && r2.converged) ? 0 : 1;
}
