// Experiment U1 (paper section 3.2): update notification is an
// asynchronous best-effort multicast; each receiver files the event in a
// new-version cache and a propagation daemon pulls when it sees fit.
// "Rapid propagation enhances the availability of the new version of the
// file; delayed propagation may reduce the overall propagation cost when
// updates are bursty."
//
// Sweeps burst size and propagation policy (eager after every update vs
// delayed one pass after the burst) and reports transfers and bytes moved.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "src/repl/physical_api.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

struct Run {
  uint64_t pulls = 0;
  uint64_t bytes = 0;
  uint64_t datagrams = 0;
  double wall_ms = 0.0;  // host wall clock, not simulated time
};

// Writes `burst` updates of `update_size` bytes to one file on host 0 and
// propagates to host 1 either eagerly (daemon pass after every write) or
// lazily (single daemon pass at the end). `runtime` picks the execution
// mode: deterministic pumps inline; threaded serves NFS from a thread
// pool and pulls through a per-replica propagation worker.
Run RunBurst(int burst, size_t update_size, bool eager,
             const RuntimeOptions& runtime = RuntimeOptions{}) {
  auto started = std::chrono::steady_clock::now();
  sim::Cluster cluster(runtime);
  sim::FicusHost* a = cluster.AddHost("a");
  sim::FicusHost* b = cluster.AddHost("b");
  auto volume = cluster.CreateVolume({a, b});
  auto logical = cluster.MountEverywhere(a, *volume);
  (void)vfs::WriteFileAt(*logical, "f", "seed");
  (void)cluster.ReconcileUntilQuiescent();
  cluster.network().ResetStats();

  for (int i = 0; i < burst; ++i) {
    std::string payload(update_size, static_cast<char>('a' + i % 26));
    (void)vfs::WriteFileAt(*logical, "f", payload);
    if (eager) {
      (void)b->RunPropagation();
    }
  }
  if (!eager) {
    (void)b->RunPropagation();
  }

  Run run;
  std::optional<repl::PropagationStats> stats = b->propagation_stats(*volume);
  if (stats.has_value()) {
    run.pulls = stats->pulled_files;
    run.bytes = stats->bytes_pulled;
  }
  run.datagrams = cluster.network().stats().datagrams_sent;
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
  return run;
}

struct DeltaRun {
  uint64_t bytes_pulled = 0;    // payload bytes the edit propagation moved
  uint64_t rpcs = 0;            // NFS RPCs the edit propagation issued
  uint64_t blocks_fetched = 0;  // differing blocks pulled (delta mode only)
};

// Seeds a `file_size` file on host a, converges host b, edits ONE 4 KiB
// block in the middle, and measures what propagating just that edit costs
// host b with the delta path on or off.
DeltaRun RunDeltaEdit(size_t file_size, bool delta_enabled) {
  sim::Cluster cluster;
  sim::FicusHost* a = cluster.AddHost("a");
  sim::HostConfig b_config;
  b_config.propagation.delta_enabled = delta_enabled;
  sim::FicusHost* b = cluster.AddHost("b", b_config);
  auto volume = cluster.CreateVolume({a, b});
  auto logical = cluster.MountEverywhere(a, *volume);

  std::string contents(file_size, 'x');
  (void)vfs::WriteFileAt(*logical, "big", contents);
  (void)b->RunPropagation();

  const size_t block = repl::kDeltaBlockSize;
  const size_t edit_at = (file_size / block / 2) * block;
  for (size_t i = 0; i < block && edit_at + i < contents.size(); ++i) {
    contents[edit_at + i] = 'y';
  }
  uint64_t bytes_before = 0;
  if (auto stats = b->propagation_stats(*volume); stats.has_value()) {
    bytes_before = stats->bytes_pulled;
  }
  uint64_t rpcs_before = b->metrics().CounterValue("nfs.client.rpcs");
  (void)vfs::WriteFileAt(*logical, "big", contents);
  (void)b->RunPropagation();

  DeltaRun run;
  if (auto stats = b->propagation_stats(*volume); stats.has_value()) {
    run.bytes_pulled = stats->bytes_pulled - bytes_before;
    run.blocks_fetched = stats->delta_blocks_fetched;
  }
  run.rpcs = b->metrics().CounterValue("nfs.client.rpcs") - rpcs_before;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  // --runtime=threaded runs the burst sweep over the threaded runtime
  // (thread-pool NFS service + propagation workers) instead of the
  // deterministic one; either way the JSON carries a side-by-side
  // threaded-vs-deterministic comparison of one fixed workload.
  RuntimeOptions runtime;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runtime=threaded") == 0) {
      runtime.mode = RuntimeMode::kThreaded;
    } else if (std::strcmp(argv[i], "--runtime=deterministic") == 0) {
      runtime.mode = RuntimeMode::kDeterministic;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --runtime=threaded)\n", argv[i]);
      return 2;
    }
  }

  std::printf("Experiment U1 — update notification & propagation under bursts\n");
  std::printf("(1 KiB updates to one file; receiver pulls eagerly vs after burst)\n");
  std::printf("(runtime: %s)\n\n", RuntimeModeName(runtime.mode));
  std::printf("%8s %12s | %10s %12s | %10s %12s %9s\n", "burst", "datagrams", "eager",
              "eager", "delayed", "delayed", "savings");
  std::printf("%8s %12s | %10s %12s | %10s %12s %9s\n", "size", "sent", "pulls", "bytes",
              "pulls", "bytes", "");
  // FICUS_BENCH_SMOKE=1 (CI) shrinks the sweep to a correctness check:
  // same code paths, same JSON shape, a fraction of the runtime.
  const bool smoke = std::getenv("FICUS_BENCH_SMOKE") != nullptr;
  const std::vector<int> bursts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16, 32, 64};
  std::ostringstream json;
  json << "{\"bench\":\"propagation\",\"update_size\":1024,\"runtime\":\""
       << RuntimeModeName(runtime.mode) << "\",\"rows\":[";
  bool first = true;
  for (int burst : bursts) {
    Run eager = RunBurst(burst, 1024, /*eager=*/true, runtime);
    Run delayed = RunBurst(burst, 1024, /*eager=*/false, runtime);
    double savings = eager.bytes == 0
                         ? 0.0
                         : 100.0 * (1.0 - static_cast<double>(delayed.bytes) /
                                              static_cast<double>(eager.bytes));
    std::printf("%8d %12llu | %10llu %12llu | %10llu %12llu %8.1f%%\n", burst,
                static_cast<unsigned long long>(eager.datagrams),
                static_cast<unsigned long long>(eager.pulls),
                static_cast<unsigned long long>(eager.bytes),
                static_cast<unsigned long long>(delayed.pulls),
                static_cast<unsigned long long>(delayed.bytes), savings);
    if (!first) json << ",";
    first = false;
    json << "{\"burst\":" << burst << ",\"datagrams\":" << eager.datagrams
         << ",\"eager\":{\"pulls\":" << eager.pulls << ",\"bytes\":" << eager.bytes
         << "},\"delayed\":{\"pulls\":" << delayed.pulls
         << ",\"bytes\":" << delayed.bytes << "},\"savings_pct\":" << savings << "}";
  }
  json << "]";

  std::printf("\nDelta propagation — one 4 KiB block edited mid-file, then pulled\n");
  std::printf("%10s | %12s %6s | %12s %6s | %9s\n", "file size", "whole bytes", "rpcs",
              "delta bytes", "rpcs", "reduction");
  const std::vector<size_t> sizes = smoke ? std::vector<size_t>{64 * 1024}
                                          : std::vector<size_t>{64 * 1024, 256 * 1024,
                                                                1024 * 1024};
  json << ",\"delta\":[";
  first = true;
  for (size_t size : sizes) {
    DeltaRun whole = RunDeltaEdit(size, /*delta_enabled=*/false);
    DeltaRun delta = RunDeltaEdit(size, /*delta_enabled=*/true);
    double reduction = delta.bytes_pulled == 0
                           ? 0.0
                           : static_cast<double>(whole.bytes_pulled) /
                                 static_cast<double>(delta.bytes_pulled);
    std::printf("%9zuK | %12llu %6llu | %12llu %6llu | %8.1fx\n", size / 1024,
                static_cast<unsigned long long>(whole.bytes_pulled),
                static_cast<unsigned long long>(whole.rpcs),
                static_cast<unsigned long long>(delta.bytes_pulled),
                static_cast<unsigned long long>(delta.rpcs), reduction);
    if (!first) json << ",";
    first = false;
    json << "{\"file_size\":" << size << ",\"whole\":{\"bytes\":" << whole.bytes_pulled
         << ",\"rpcs\":" << whole.rpcs << "},\"delta\":{\"bytes\":" << delta.bytes_pulled
         << ",\"rpcs\":" << delta.rpcs << ",\"blocks_fetched\":" << delta.blocks_fetched
         << "},\"reduction\":" << reduction << "}";
  }
  json << "]";

  // Threaded-vs-deterministic on one fixed workload: same pull/byte
  // counts expected (the protocols are runtime-independent), wall clock
  // reported so the cost of real threads is visible next to the inline
  // pump. This section always runs both runtimes regardless of --runtime.
  const int cmp_burst = smoke ? 4 : 16;
  std::printf("\nRuntime comparison — burst of %d, eager pulls, both runtimes\n",
              cmp_burst);
  std::printf("%14s | %8s %12s %10s\n", "runtime", "pulls", "bytes", "wall ms");
  json << ",\"runtime_comparison\":{\"burst\":" << cmp_burst << ",\"modes\":[";
  Run per_mode[2];
  for (int i = 0; i < 2; ++i) {
    RuntimeOptions mode_options;
    mode_options.mode = (i == 0) ? RuntimeMode::kDeterministic : RuntimeMode::kThreaded;
    per_mode[i] = RunBurst(cmp_burst, 1024, /*eager=*/true, mode_options);
    std::printf("%14s | %8llu %12llu %10.2f\n", RuntimeModeName(mode_options.mode),
                static_cast<unsigned long long>(per_mode[i].pulls),
                static_cast<unsigned long long>(per_mode[i].bytes),
                per_mode[i].wall_ms);
    if (i != 0) json << ",";
    json << "{\"runtime\":\"" << RuntimeModeName(mode_options.mode)
         << "\",\"pulls\":" << per_mode[i].pulls << ",\"bytes\":" << per_mode[i].bytes
         << ",\"wall_ms\":" << per_mode[i].wall_ms << "}";
  }
  const bool transfers_match = per_mode[0].pulls == per_mode[1].pulls &&
                               per_mode[0].bytes == per_mode[1].bytes;
  json << "],\"transfers_match\":" << (transfers_match ? "true" : "false") << "}";
  std::printf("transfer counts %s across runtimes\n",
              transfers_match ? "match" : "DIFFER");

  json << "}";
  std::ofstream out("BENCH_propagation.json");
  out << json.str() << "\n";
  std::printf("\nwrote BENCH_propagation.json\n");
  std::printf("\nShape check vs paper: the new-version cache coalesces a burst into\n"
              "one entry, so delayed propagation transfers the file once where the\n"
              "eager policy transfers it once per update — the amortization the\n"
              "paper credits to \"wait for some later, more convenient time\".\n"
              "The delta rows extend it: a block-digest exchange pins the transfer\n"
              "to the blocks that changed, so the pull cost tracks the edit size,\n"
              "not the file size.\n");
  return 0;
}
