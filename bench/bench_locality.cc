// Experiment P4 (paper sections 1, 2.6): the dual name mapping "is
// difficult to implement efficiently, but is not inherently expensive" —
// because UNIX file reference streams show strong locality [Floyd'86], the
// buffer cache absorbs the extra lookups. The Andrew prototype [19] paid
// dearly for a similar scheme precisely because its lower-level mapping
// defeated that locality.
//
// Sweeps the Zipf skew of an open/read workload and reports device reads
// per open and buffer-cache hit rate for raw UFS vs the Ficus stack. The
// Ficus *overhead ratio* should shrink as locality grows.
#include <cstdio>
#include <memory>

#include "src/repl/logical.h"
#include "src/repl/physical.h"
#include "src/sim/workload.h"
#include "src/ufs/ufs_vfs.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

struct MiniResolver : repl::ReplicaResolver {
  std::vector<repl::ReplicaId> ReplicasOf(const repl::VolumeId&) override { return {1}; }
  StatusOr<repl::PhysicalApi*> Access(const repl::VolumeId&, repl::ReplicaId) override {
    return static_cast<repl::PhysicalApi*>(layer);
  }
  repl::PhysicalLayer* layer = nullptr;
};

struct Result {
  double reads_per_op = 0;
  double hit_rate = 0;
};

constexpr int kOps = 4000;
// Cache sized to hold a fraction of the working set, so locality matters.
constexpr uint32_t kCacheBlocks = 160;

Result RunOnUfs(double skew) {
  SimClock clock;
  storage::BlockDevice device(1 << 16);
  storage::BufferCache cache(&device, kCacheBlocks);
  ufs::Ufs ufs(&cache, &clock);
  (void)ufs.Format(1 << 14);
  ufs::UfsVfs raw(&ufs);
  sim::WorkloadConfig config;
  config.directories = 32;
  config.files_per_directory = 16;
  config.file_size_bytes = 2048;
  config.zipf_skew = skew;
  config.write_fraction = 0.0;
  sim::Workload workload(config, 42);
  (void)workload.Populate(&raw);
  cache.Invalidate();
  cache.ResetStats();
  device.ResetStats();
  (void)workload.Run(&raw, kOps);
  Result result;
  result.reads_per_op = static_cast<double>(device.stats().reads) / kOps;
  uint64_t access = cache.stats().hits + cache.stats().misses;
  result.hit_rate = access == 0 ? 0 : static_cast<double>(cache.stats().hits) / access;
  return result;
}

Result RunOnFicus(double skew) {
  SimClock clock;
  storage::BlockDevice device(1 << 16);
  storage::BufferCache cache(&device, kCacheBlocks);
  ufs::Ufs ufs(&cache, &clock);
  (void)ufs.Format(1 << 14);
  auto physical = std::make_unique<repl::PhysicalLayer>(&ufs, &clock);
  (void)physical->CreateVolume(repl::VolumeId{1, 1}, 1, "vol", true);
  MiniResolver resolver;
  resolver.layer = physical.get();
  repl::LogicalLayer logical(repl::VolumeId{1, 1}, &resolver, nullptr, nullptr, &clock);
  sim::WorkloadConfig config;
  config.directories = 32;
  config.files_per_directory = 16;
  config.file_size_bytes = 2048;
  config.zipf_skew = skew;
  config.write_fraction = 0.0;
  sim::Workload workload(config, 42);
  (void)workload.Populate(&logical);
  cache.Invalidate();
  cache.ResetStats();
  device.ResetStats();
  (void)workload.Run(&logical, kOps);
  Result result;
  result.reads_per_op = static_cast<double>(device.stats().reads) / kOps;
  uint64_t access = cache.stats().hits + cache.stats().misses;
  result.hit_rate = access == 0 ? 0 : static_cast<double>(cache.stats().hits) / access;
  return result;
}

}  // namespace

int main() {
  std::printf("Experiment P4 — locality tames the dual-mapping cost (section 2.6)\n");
  std::printf("512 files, 4k opens, buffer cache ~%u blocks (partial working set)\n\n",
              kCacheBlocks);
  std::printf("%6s | %14s %9s | %14s %9s | %12s\n", "zipf", "UFS reads/op", "UFS hit%",
              "Ficus reads/op", "Ficus hit%", "extra rd/op");
  for (double skew : {0.0, 0.4, 0.8, 1.0, 1.2}) {
    Result unix_result = RunOnUfs(skew);
    Result ficus_result = RunOnFicus(skew);
    std::printf("%6.1f | %14.2f %8.1f%% | %14.2f %8.1f%% | %12.2f\n", skew,
                unix_result.reads_per_op, unix_result.hit_rate * 100,
                ficus_result.reads_per_op, ficus_result.hit_rate * 100,
                ficus_result.reads_per_op - unix_result.reads_per_op);
  }
  std::printf("\nShape check vs paper: at low locality Ficus pays its extra metadata\n"
              "I/Os on nearly every open; as the reference stream concentrates\n"
              "(skew -> 1+), the buffer cache absorbs the dual mapping and the\n"
              "absolute overhead per open shrinks toward zero — the locality\n"
              "argument of sections 1 and 2.6, and the [19] failure mode avoided by\n"
              "keeping the on-disk layout parallel to the logical name space.\n");
  return 0;
}
