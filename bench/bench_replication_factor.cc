// Ablation: what does each additional replica cost? The paper bounds the
// replication factor only by 2^32 (section 3.1 footnote) and relies on
// update notification staying cheap. This bench sweeps the replication
// factor and reports, per client update:
//   * notification datagrams sent (grows linearly — one per peer),
//   * bytes pulled cluster-wide to bring every replica current,
//   * reconciliation entry work for the same convergence,
// plus the read availability payoff that motivates the cost.
#include <cstdio>

#include "src/baseline/availability.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

struct Cost {
  uint64_t datagrams_per_update = 0;
  uint64_t bytes_pulled = 0;
  uint64_t entries_examined = 0;
};

Cost Measure(int replicas) {
  sim::Cluster cluster;
  std::vector<sim::FicusHost*> hosts;
  for (int i = 0; i < replicas; ++i) {
    hosts.push_back(cluster.AddHost("h" + std::to_string(i)));
  }
  auto volume = cluster.CreateVolume(hosts);
  auto fs = cluster.MountEverywhere(hosts[0], *volume);
  (void)vfs::WriteFileAt(*fs, "f", std::string(2048, 'a'));
  (void)cluster.ReconcileUntilQuiescent();

  cluster.network().ResetStats();
  const int kUpdates = 10;
  for (int u = 0; u < kUpdates; ++u) {
    (void)vfs::WriteFileAt(*fs, "f", std::string(2048, static_cast<char>('a' + u)));
    (void)cluster.RunPropagationEverywhere();
  }
  (void)cluster.ReconcileUntilQuiescent();

  Cost cost;
  cost.datagrams_per_update = cluster.network().stats().datagrams_sent / kUpdates;
  for (sim::FicusHost* host : hosts) {
    std::optional<repl::PropagationStats> stats = host->propagation_stats(*volume);
    if (stats.has_value()) {
      cost.bytes_pulled += stats->bytes_pulled;
    }
    const repl::ReconcileStats* recon = host->reconcile_stats(*volume);
    if (recon != nullptr) {
      cost.entries_examined += recon->entries_examined;
    }
  }
  return cost;
}

}  // namespace

int main() {
  std::printf("Ablation — per-update cost vs replication factor\n");
  std::printf("(10 updates of a 2 KiB file, eager propagation, then reconcile)\n\n");
  std::printf("%10s %16s %14s %16s %16s\n", "replicas", "datagrams/upd", "bytes pulled",
              "entries exam.", "read avail p=.9");
  baseline::OneCopyPolicy one_copy;
  for (int n : {1, 2, 3, 4, 5}) {
    Cost cost = Measure(n);
    auto avail = baseline::ComputeExact(one_copy, n, 0.9);
    std::printf("%10d %16llu %14llu %16llu %16.6f\n", n,
                static_cast<unsigned long long>(cost.datagrams_per_update),
                static_cast<unsigned long long>(cost.bytes_pulled),
                static_cast<unsigned long long>(cost.entries_examined),
                avail.ok() ? avail->read : 0.0);
  }
  std::printf("\nShape check: notification fan-out and pull traffic grow linearly\n"
              "with the replication factor while availability converges to 1 —\n"
              "the marginal replica buys ever less availability for the same\n"
              "update cost, which is why Ficus leaves placement per-volume and\n"
              "per-file (sections 3.1, 4.1).\n");
  return 0;
}
