// Experiment C1 (paper abstract / section 3.3): "Conflicting updates to
// directories are detected and automatically repaired; conflicting updates
// to ordinary files are detected and reported to the owner. ... the
// relative rarity of conflicting updates make this optimistic scheme
// attractive."
//
// Drives partition/update/heal cycles with a tunable probability that two
// sides touch the same object, and reports how many conflicts arose, how
// many were auto-repaired (directories) vs owner-reported (files), and
// that zero updates were lost.
#include <cstdio>
#include <set>
#include <string>

#include "src/common/rng.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

struct Outcome {
  int updates = 0;
  int cycles = 0;
  size_t file_conflicts = 0;
  size_t dir_repairs = 0;
  size_t name_collisions = 0;
  int lost_updates = 0;
};

Outcome RunScenario(double same_object_prob, int cycles, uint64_t seed) {
  Rng rng(SeedFromEnvOr(seed, "bench_conflicts"));
  sim::Cluster cluster;
  sim::FicusHost* a = cluster.AddHost("a");
  sim::FicusHost* b = cluster.AddHost("b");
  auto volume = cluster.CreateVolume({a, b});
  auto la = cluster.MountEverywhere(a, *volume);
  auto lb = cluster.MountEverywhere(b, *volume);
  (void)vfs::MkdirAll(*la, "shared");
  (void)vfs::WriteFileAt(*la, "shared/doc", "base");
  (void)cluster.ReconcileUntilQuiescent(4);

  Outcome outcome;
  outcome.cycles = cycles;
  std::set<std::string> expected;  // files that must exist at the end
  expected.insert("shared/doc");
  int unique = 0;

  for (int cycle = 0; cycle < cycles; ++cycle) {
    cluster.Partition({{a}, {b}});
    for (repl::LogicalLayer* logical : {la.value(), lb.value()}) {
      ++outcome.updates;
      if (rng.NextBool(same_object_prob)) {
        // Both sides may hit the same file -> file conflict material.
        (void)vfs::WriteFileAt(logical, "shared/doc",
                               "edit " + std::to_string(cycle) + " by " +
                                   (logical == la.value() ? "a" : "b"));
      } else {
        std::string path = "shared/u" + std::to_string(unique++);
        (void)vfs::WriteFileAt(logical, path, "independent");
        expected.insert(path);
      }
    }
    cluster.Heal();
    (void)cluster.ReconcileUntilQuiescent(8);
    // Owner resolves any conflict so the next cycle starts clean.
    auto contents = vfs::ReadFileAt(*la, "shared/doc");
    if (!contents.ok() && contents.status().code() == ErrorCode::kConflict) {
      repl::PhysicalLayer* phys = a->registry().LocalReplica(*volume);
      auto entries = phys->ReadDirectory(repl::kRootFileId);
      // find shared dir, then doc's file id
      for (const auto& e : *entries) {
        if (e.alive && e.name == "shared") {
          auto inner = phys->ReadDirectory(e.file);
          for (const auto& ie : *inner) {
            if (ie.alive && ie.name == "doc") {
              (void)(*la)->ResolveFileConflict(ie.file, {'m', 'e', 'r', 'g', 'e', 'd'});
            }
          }
        }
      }
      (void)cluster.ReconcileUntilQuiescent(8);
    }
  }

  for (const std::string& path : expected) {
    if (!vfs::Exists(*la, path) || !vfs::Exists(*lb, path)) {
      ++outcome.lost_updates;
    }
  }
  outcome.file_conflicts = a->conflict_log().CountOf(repl::ConflictKind::kFileUpdate) +
                           b->conflict_log().CountOf(repl::ConflictKind::kFileUpdate);
  outcome.dir_repairs = a->conflict_log().CountOf(repl::ConflictKind::kDirectoryRepair) +
                        b->conflict_log().CountOf(repl::ConflictKind::kDirectoryRepair);
  outcome.name_collisions = a->conflict_log().CountOf(repl::ConflictKind::kNameCollision) +
                            b->conflict_log().CountOf(repl::ConflictKind::kNameCollision);
  return outcome;
}

}  // namespace

int main() {
  std::printf("Experiment C1 — conflict detection & repair across partition cycles\n");
  std::printf("(two replicas, both sides update during every partition, 12 cycles)\n\n");
  std::printf("%12s %9s | %14s %12s %12s %8s\n", "same-object", "updates", "file conflicts",
              "dir repairs", "name colls", "lost");
  for (double p : {0.0, 0.25, 0.5, 1.0}) {
    Outcome outcome = RunScenario(p, 12, 7);
    std::printf("%11.0f%% %9d | %14zu %12zu %12zu %8d\n", p * 100, outcome.updates,
                outcome.file_conflicts, outcome.dir_repairs, outcome.name_collisions,
                outcome.lost_updates);
  }
  std::printf("\nShape check vs paper: independent updates (same-object 0%%) produce\n"
              "zero file conflicts — the namespace merges silently; conflicts only\n"
              "appear when both sides write the same file, they are detected (never\n"
              "silently merged), and no update is ever lost.\n");
  return 0;
}
