// The NFS caching trade-off (paper section 2.2): the client's attribute
// and name caches cut RPC traffic dramatically — and produce the stale
// views the paper complains are "not fully controllable" and break layers
// that cannot adopt their assumptions.
//
// Sweeps the cache TTL and reports RPCs per operation (the benefit) and
// the staleness anomalies observed by a two-client workload (the cost).
#include <cstdio>
#include <memory>

#include "src/nfs/client.h"
#include "src/nfs/server.h"
#include "src/vfs/mem_vfs.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

struct Result {
  double rpcs_per_op = 0;
  int stale_reads = 0;  // reads that returned outdated sizes
  int ghost_lookups = 0;  // lookups that resolved names already deleted
};

Result RunWithTtl(SimTime ttl) {
  SimClock clock;
  net::Network network(&clock);
  vfs::MemVfs exported(&clock);
  net::HostId server_host = network.AddHost("server");
  net::HostId reader_host = network.AddHost("reader");
  net::HostId writer_host = network.AddHost("writer");
  nfs::NfsServer server(&network, server_host, &exported);
  nfs::ClientConfig reader_config;
  reader_config.attr_cache_ttl = ttl;
  reader_config.dnlc_ttl = ttl;
  nfs::NfsClient reader(&network, reader_host, server_host, &clock, reader_config);
  // The writer bypasses caches entirely (it represents "someone else").
  nfs::NfsClient writer(&network, writer_host, server_host, &clock,
                        nfs::ClientConfig{.attr_cache_ttl = 0, .dnlc_ttl = 0, .retry = {}});

  const int kFiles = 16;
  for (int i = 0; i < kFiles; ++i) {
    (void)vfs::WriteFileAt(&writer, "f" + std::to_string(i), "1");
  }

  Result result;
  int ops = 0;
  reader.ResetStats();
  auto root = reader.Root();
  vfs::Credentials cred;
  for (int round = 0; round < 40; ++round) {
    // Reader stats every file twice (the cache-friendly pattern)...
    for (int i = 0; i < kFiles; ++i) {
      auto file = (*root)->Lookup("f" + std::to_string(i), cred);
      if (file.ok()) {
        auto attr = (*file)->GetAttr();
        ++ops;
        // The writer grew this file last round; size < round+1 is stale.
        if (attr.ok() && round > 0 && attr->size < static_cast<uint64_t>(round + 1)) {
          ++result.stale_reads;
        }
      }
      ++ops;
    }
    // ...while the writer appends to every file and replaces one name.
    for (int i = 0; i < kFiles; ++i) {
      (void)vfs::WriteFileAt(&writer, "f" + std::to_string(i),
                             std::string(static_cast<size_t>(round + 2), 'x'));
    }
    (void)vfs::RemovePath(&writer, "f0");
    // The file is gone on the server; a lookup that still succeeds was
    // served from the reader's DNLC — a ghost name.
    if ((*root)->Lookup("f0", cred).ok()) {
      ++result.ghost_lookups;
    }
    (void)vfs::WriteFileAt(&writer, "f0", std::string(static_cast<size_t>(round + 2), 'x'));
    clock.Advance(1 * kSecond);  // one second of "wall" time per round
  }
  result.rpcs_per_op = static_cast<double>(reader.stats().rpcs) / ops;
  return result;
}

}  // namespace

int main() {
  std::printf("NFS cache trade-off (section 2.2): RPC savings vs staleness\n");
  std::printf("(reader stats 16 files x 40 rounds while a second client mutates)\n\n");
  std::printf("%12s %14s %14s %16s\n", "cache TTL", "RPCs/op", "stale reads", "ghost lookups");
  for (SimTime ttl : std::initializer_list<SimTime>{0, 1 * kSecond, 3 * kSecond,
                                                    10 * kSecond, 30 * kSecond}) {
    Result result = RunWithTtl(ttl);
    std::printf("%11llus %14.2f %14d %16d\n",
                static_cast<unsigned long long>(ttl / kSecond), result.rpcs_per_op,
                result.stale_reads, result.ghost_lookups);
  }
  std::printf("\nShape check vs paper: longer TTLs buy fewer RPCs per operation and\n"
              "pay in stale attributes and ghost names — the uncontrollable\n"
              "behaviour that pushed Ficus to tunnel its own semantics through\n"
              "lookup rather than trust NFS-level caching (sections 2.2-2.3).\n");
  return 0;
}
