// Ablation: what does the update-notification machinery buy over plain
// periodic reconciliation?
//
// The paper runs BOTH: notifications give fast best-effort convergence
// ("rapid propagation enhances the availability of the new version"),
// while periodic reconciliation is the reliable backstop. This bench
// disables one half at a time and measures the *staleness window* — the
// simulated time between an update at replica 1 and the moment replica 2
// can serve it from local storage.
#include <cstdio>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

// Measures staleness under the given daemon periods, with notifications
// optionally suppressed (partitioning the datagram by writing during a
// brief partition would also drop RPC access, so instead we clear the
// receiver's new-version cache to model lost datagrams).
SimTime MeasureStaleness(SimTime propagation_period, SimTime reconcile_period,
                         bool notifications) {
  sim::Cluster cluster;
  sim::FicusHost* a = cluster.AddHost("a");
  sim::FicusHost* b = cluster.AddHost("b");
  auto volume = cluster.CreateVolume({a, b});
  auto fs = cluster.MountEverywhere(a, *volume);
  (void)vfs::WriteFileAt(*fs, "f", "v1");
  (void)cluster.ReconcileUntilQuiescent();

  SimTime start = cluster.clock().Now();
  (void)vfs::WriteFileAt(*fs, "f", "v2");
  repl::PhysicalLayer* b_phys = b->registry().LocalReplica(*volume);
  if (!notifications) {
    // Model the datagram being lost (best-effort multicast).
    (void)b_phys->TakePendingVersions();
  }

  auto entries = b_phys->ReadDirectory(repl::kRootFileId);
  repl::FileId file;
  for (const auto& e : *entries) {
    if (e.alive && e.name == "f") {
      file = e.file;
    }
  }

  // The update lands at a uniformly random phase of the daemon cycles; we
  // model the worst-ish case by starting the cycle fresh (full period
  // until the first tick). Step one simulated second at a time, running
  // each daemon when its period elapses.
  for (uint64_t tick = 1; tick <= 3600; ++tick) {
    cluster.Sleep(1 * kSecond);
    if (propagation_period != 0 && tick % (propagation_period / kSecond) == 0) {
      (void)cluster.RunPropagationEverywhere();
    }
    if (reconcile_period != 0 && tick % (reconcile_period / kSecond) == 0) {
      (void)b->RunReconciliation();
    }
    auto data = b_phys->ReadAllData(file);
    if (data.ok() && data->size() == 2 && (*data)[1] == '2') {
      return cluster.clock().Now() - start;
    }
  }
  return 3600 * kSecond;  // did not converge within an hour
}

}  // namespace

int main() {
  std::printf("Ablation — staleness window: notifications vs reconciliation-only\n");
  std::printf("(simulated seconds from update at replica 1 until replica 2 holds it)\n\n");
  std::printf("%24s %24s %18s\n", "propagation period", "reconcile period",
              "staleness (s)");
  struct Row {
    SimTime prop;
    SimTime recon;
    bool notify;
    const char* label;
  };
  const Row rows[] = {
      {5 * kSecond, 300 * kSecond, true, "5s + notify"},
      {30 * kSecond, 300 * kSecond, true, "30s + notify"},
      {0, 60 * kSecond, false, "reconcile-only 60s"},
      {0, 300 * kSecond, false, "reconcile-only 300s"},
      {0, 900 * kSecond, false, "reconcile-only 900s"},
  };
  for (const Row& row : rows) {
    SimTime staleness = MeasureStaleness(row.prop, row.recon, row.notify);
    std::printf("%24s %24s %18.0f\n",
                row.prop == 0 ? "off" : (std::to_string(row.prop / kSecond) + "s").c_str(),
                (std::to_string(row.recon / kSecond) + "s").c_str(),
                static_cast<double>(staleness) / kSecond);
  }
  std::printf("\nShape check vs paper: with notifications the staleness window is the\n"
              "propagation-daemon period (seconds); without them it degenerates to\n"
              "the full reconciliation period (minutes) — why Ficus runs both the\n"
              "cheap best-effort fast path and the reliable periodic protocol\n"
              "(sections 3.2-3.3).\n");
  return 0;
}
