// Experiment V1: version-vector operation costs as replica counts grow
// (the paper allows 2^32 replicas of a file, section 3.1 footnote, so the
// bookkeeping must stay cheap well past realistic replication factors).
#include <benchmark/benchmark.h>

#include "src/repl/version_vector.h"

namespace {

using ficus::repl::ReplicaId;
using ficus::repl::VersionVector;

VersionVector MakeVector(int replicas, uint64_t counts) {
  VersionVector v;
  for (int r = 1; r <= replicas; ++r) {
    for (uint64_t i = 0; i < counts; ++i) {
      v.Increment(static_cast<ReplicaId>(r));
    }
  }
  return v;
}

void BM_Increment(benchmark::State& state) {
  VersionVector v = MakeVector(static_cast<int>(state.range(0)), 1);
  ReplicaId replica = 1;
  for (auto _ : state) {
    v.Increment(replica);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Increment)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_CompareEqual(benchmark::State& state) {
  VersionVector a = MakeVector(static_cast<int>(state.range(0)), 3);
  VersionVector b = a;
  for (auto _ : state) {
    auto order = a.Compare(b);
    benchmark::DoNotOptimize(order);
  }
}
BENCHMARK(BM_CompareEqual)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_CompareConcurrent(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  VersionVector a = MakeVector(n, 3);
  VersionVector b = MakeVector(n, 3);
  a.Increment(1);
  b.Increment(static_cast<ReplicaId>(n));
  for (auto _ : state) {
    auto order = a.Compare(b);
    benchmark::DoNotOptimize(order);
  }
}
BENCHMARK(BM_CompareConcurrent)->Arg(2)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_Merge(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  VersionVector a = MakeVector(n, 3);
  VersionVector b = MakeVector(n, 4);
  for (auto _ : state) {
    VersionVector merged = VersionVector::Merge(a, b);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_Merge)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_SerializeDeserialize(benchmark::State& state) {
  VersionVector v = MakeVector(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    ficus::ByteWriter w(buf);
    v.Serialize(w);
    ficus::ByteReader r(buf);
    auto decoded = VersionVector::Deserialize(r);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_SerializeDeserialize)->Arg(1)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
