// Experiment F1 (Figures 1 & 2): the same client operations run through
// both stack shapes —
//   co-resident:  logical -> physical -> UFS
//   cross-host:   logical -> [facade encoding] -> NFS -> facade -> physical -> UFS
// — and produce identical results; the only difference is RPC traffic.
// Also demonstrates surrounding either stack with null layers.
#include <chrono>
#include <cstdio>

#include "src/sim/cluster.h"
#include "src/vfs/pass_through.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

constexpr int kOps = 300;

struct RunResult {
  double ms = 0;
  uint64_t rpcs = 0;
  bool correct = true;
};

RunResult Drive(vfs::Vfs* fs, net::Network* network) {
  network->ResetStats();
  RunResult result;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    std::string dir = "d" + std::to_string(i % 8);
    std::string path = dir + "/f" + std::to_string(i);
    if (!vfs::MkdirAll(fs, dir).ok() ||
        !vfs::WriteFileAt(fs, path, "op " + std::to_string(i)).ok()) {
      result.correct = false;
      continue;
    }
    auto contents = vfs::ReadFileAt(fs, path);
    if (!contents.ok() || contents.value() != "op " + std::to_string(i)) {
      result.correct = false;
    }
  }
  result.ms = MillisSince(start);
  result.rpcs = network->stats().rpcs_sent;
  return result;
}

}  // namespace

int main() {
  std::printf("Experiment F1 — stack composition (Figures 1 & 2)\n\n");

  // Co-resident: host 'same' stores the replica it mounts.
  {
    sim::Cluster cluster;
    sim::FicusHost* same = cluster.AddHost("same");
    auto volume = cluster.CreateVolume({same});
    auto logical = cluster.MountEverywhere(same, *volume);
    RunResult result = Drive(*logical, &cluster.network());
    std::printf("%-44s %9.1f ms %8llu RPCs  %s\n",
                "co-resident (logical -> physical -> UFS):", result.ms,
                static_cast<unsigned long long>(result.rpcs),
                result.correct ? "ok" : "WRONG RESULTS");
  }

  // Cross-host: 'client' mounts a volume stored only on 'server'.
  {
    sim::Cluster cluster;
    sim::FicusHost* client = cluster.AddHost("client");
    sim::FicusHost* server = cluster.AddHost("server");
    auto volume = cluster.CreateVolume({server});
    auto logical = cluster.MountEverywhere(client, *volume);
    RunResult result = Drive(*logical, &cluster.network());
    std::printf("%-44s %9.1f ms %8llu RPCs  %s\n",
                "cross-host (logical -> NFS -> physical):", result.ms,
                static_cast<unsigned long long>(result.rpcs),
                result.correct ? "ok" : "WRONG RESULTS");
  }

  // Null layers around the logical layer: transparent insertion.
  {
    sim::Cluster cluster;
    sim::FicusHost* same = cluster.AddHost("same");
    auto volume = cluster.CreateVolume({same});
    auto logical = cluster.MountEverywhere(same, *volume);
    vfs::PassThroughVfs wrapped(*logical);
    vfs::PassThroughVfs doubly(&wrapped);
    RunResult result = Drive(&doubly, &cluster.network());
    std::printf("%-44s %9.1f ms %8llu RPCs  %s\n",
                "co-resident + 2 null layers on top:", result.ms,
                static_cast<unsigned long long>(result.rpcs),
                result.correct ? "ok" : "WRONG RESULTS");
  }

  std::printf("\nShape check vs paper: all three compositions give identical client\n"
              "semantics; the cross-host stack trades procedure calls for RPCs and\n"
              "the null layers cost almost nothing (sections 2, 6, 7).\n");
  return 0;
}
