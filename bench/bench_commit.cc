// Experiment U2 (paper section 3.2, footnote 5): the single-file atomic
// commit rewrites the whole file via a shadow replica; "While its
// performance impact is usually small, it can have a significant effect if
// the client is updating a few points in a large file. To avoid alteration
// of the UFS, rewriting the entire file is necessary."
//
// Measures device bytes written to propagate a 1-block update into files
// of growing size, with the shadow-commit install (what Ficus does)
// versus a hypothetical in-place storage-layer commit (the paper's
// suggested future fix). The write amplification should grow linearly
// with file size for the shadow path and stay flat for in-place.
#include <cstdio>
#include <memory>

#include "src/repl/physical.h"

namespace {

using namespace ficus;  // NOLINT

struct Harness {
  Harness() : device(1 << 16), cache(&device, 4096), ufs(&cache, &clock) {
    (void)ufs.Format(4096);
    layer = std::make_unique<repl::PhysicalLayer>(&ufs, &clock);
    (void)layer->CreateVolume(repl::VolumeId{1, 1}, 1, "vol", true);
  }

  SimClock clock;
  storage::BlockDevice device;
  storage::BufferCache cache;
  ufs::Ufs ufs;
  std::unique_ptr<repl::PhysicalLayer> layer;
};

}  // namespace

int main() {
  std::printf("Experiment U2 — shadow-commit write amplification for a 1-block\n");
  std::printf("update propagated into a file of size S (section 3.2 footnote)\n\n");
  std::printf("%12s %22s %22s %14s\n", "file size", "shadow-commit bytes",
              "in-place bytes", "amplification");

  for (size_t size : {4096u, 16384u, 65536u, 262144u, 1048576u, 4 * 1048576u - 8192u}) {
    Harness h;
    auto file = h.layer->CreateChild(repl::kRootFileId, "f", repl::FicusFileType::kRegular, 0);
    if (!file.ok()) {
      std::fprintf(stderr, "setup failed\n");
      return 1;
    }
    std::vector<uint8_t> contents(size, 0x11);
    if (!h.layer->WriteData(*file, 0, contents).ok()) {
      std::fprintf(stderr, "populate failed\n");
      return 1;
    }

    // The "remote" version: same file with one block changed, one update
    // ahead in version-vector terms.
    auto attrs = h.layer->GetAttributes(*file);
    repl::VersionVector vv = attrs->vv;
    vv.Increment(2);
    std::vector<uint8_t> newer = contents;
    for (size_t i = 0; i < 4096 && i < newer.size(); ++i) {
      newer[i] = 0x22;
    }

    // Shadow-commit path (what Ficus does).
    h.device.ResetStats();
    if (!h.layer->InstallVersion(*file, newer, vv).ok()) {
      std::fprintf(stderr, "install failed\n");
      return 1;
    }
    uint64_t shadow_bytes = h.device.stats().writes * storage::kBlockSize;

    // Hypothetical in-place path (the storage-layer commit of section 7):
    // write only the changed block and the attribute file.
    vv.Increment(2);
    h.device.ResetStats();
    if (!h.layer->WriteData(*file, 0, std::vector<uint8_t>(4096, 0x33)).ok()) {
      std::fprintf(stderr, "in-place write failed\n");
      return 1;
    }
    uint64_t inplace_bytes = h.device.stats().writes * storage::kBlockSize;

    std::printf("%12zu %22llu %22llu %13.1fx\n", size,
                static_cast<unsigned long long>(shadow_bytes),
                static_cast<unsigned long long>(inplace_bytes),
                static_cast<double>(shadow_bytes) / static_cast<double>(inplace_bytes));
  }

  std::printf("\nShape check vs paper: the shadow path's cost scales with file size\n"
              "while the in-place path stays flat — the exact penalty the paper\n"
              "attributes to leaving the UFS unmodified, and the motivation for\n"
              "\"putting a commit function into the storage layer\" (section 7).\n");
  return 0;
}
