// Experiment U2 (paper section 3.2, footnote 5): the single-file atomic
// commit rewrites the whole file via a shadow replica; "While its
// performance impact is usually small, it can have a significant effect if
// the client is updating a few points in a large file. To avoid alteration
// of the UFS, rewriting the entire file is necessary."
//
// Section 7 names the fix — "putting a commit function into the storage
// layer" — and this repo now has it: a block-remap commit riding a small
// redo journal. The bench sweeps file size x dirty-block count x commit
// mode (shadow forced vs delta) and reports device bytes written per
// install. Shadow cost grows linearly with file size; delta cost tracks
// the dirty set. A runtime-comparison section re-runs a 1-block edit
// end to end (notify + pull + commit) under both the deterministic and
// threaded runtimes and checks the apply-side byte counts agree.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "src/repl/physical.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

constexpr size_t kBlock = storage::kBlockSize;

// One freshly formatted UFS + physical layer per measurement so both
// commit modes install from byte-identical device state. `delta` opens
// the gates wide (any size, any dirty fraction); `!delta` closes them
// (infinite minimum) so the legacy shadow path is forced even though the
// device has a journal.
struct Harness {
  explicit Harness(bool delta)
      : device(1 << 16), cache(&device, 4096), ufs(&cache, &clock) {
    (void)ufs.Format(4096);
    repl::PhysicalOptions options;
    if (delta) {
      options.commit_min_bytes = 0;
      options.commit_max_dirty_frac = 1.0;
    } else {
      options.commit_min_bytes = ~0ull;
    }
    layer = std::make_unique<repl::PhysicalLayer>(&ufs, &clock, options);
    (void)layer->CreateVolume(repl::VolumeId{1, 1}, 1, "vol", true);
  }

  SimClock clock;
  storage::BlockDevice device;
  storage::BufferCache cache;
  ufs::Ufs ufs;
  std::unique_ptr<repl::PhysicalLayer> layer;
};

struct CommitRun {
  uint64_t device_writes = 0;  // device block writes the install issued
  uint64_t device_bytes = 0;
  double wall_us = 0.0;  // host wall clock, not simulated time
};

// Installs a remote version of a `size`-byte file with `dirty` blocks
// changed (spread across the file) and measures the device writes the
// commit costs. Dies loudly if the intended commit path did not run.
CommitRun MeasureInstall(bool delta, size_t size, int dirty) {
  Harness h(delta);
  auto file =
      h.layer->CreateChild(repl::kRootFileId, "f", repl::FicusFileType::kRegular, 0);
  if (!file.ok()) {
    std::fprintf(stderr, "setup failed\n");
    std::exit(1);
  }
  std::vector<uint8_t> contents(size, 0x11);
  if (!h.layer->WriteData(*file, 0, contents).ok()) {
    std::fprintf(stderr, "populate failed\n");
    std::exit(1);
  }

  // The "remote" version: same file, `dirty` blocks changed, one update
  // ahead in version-vector terms.
  auto attrs = h.layer->GetAttributes(*file);
  repl::VersionVector vv = attrs->vv;
  vv.Increment(2);
  std::vector<uint8_t> newer = contents;
  const size_t blocks = (size + kBlock - 1) / kBlock;
  for (int d = 0; d < dirty; ++d) {
    const size_t at = (static_cast<size_t>(d) * blocks / dirty) * kBlock;
    for (size_t i = at; i < at + kBlock && i < newer.size(); ++i) {
      newer[i] = 0x22;
    }
  }

  const uint64_t deltas_before = h.layer->stats().commit_delta;
  const uint64_t shadows_before = h.layer->stats().commit_shadow;
  h.device.ResetStats();
  auto started = std::chrono::steady_clock::now();
  if (!h.layer->InstallVersion(*file, newer, vv).ok()) {
    std::fprintf(stderr, "install failed\n");
    std::exit(1);
  }
  CommitRun run;
  run.wall_us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - started)
                    .count();
  run.device_writes = h.device.stats().writes;
  run.device_bytes = run.device_writes * kBlock;
  if (delta && h.layer->stats().commit_delta != deltas_before + 1) {
    std::fprintf(stderr, "delta commit did not run (size=%zu dirty=%d)\n", size, dirty);
    std::exit(1);
  }
  if (!delta && h.layer->stats().commit_shadow != shadows_before + 1) {
    std::fprintf(stderr, "shadow commit did not run (size=%zu dirty=%d)\n", size, dirty);
    std::exit(1);
  }
  return run;
}

struct ApplyRun {
  uint64_t apply_bytes = 0;  // local device bytes the pull's install wrote
  double wall_ms = 0.0;
};

// End-to-end 1-block edit under a chosen runtime: seed a 256 KiB file on
// host a, converge host b, edit one mid-file block, pull, and report the
// local device bytes b's commit wrote (repl.prop.apply.bytes_written).
ApplyRun RunClusterEdit(const RuntimeOptions& runtime) {
  auto started = std::chrono::steady_clock::now();
  sim::Cluster cluster(runtime);
  sim::FicusHost* a = cluster.AddHost("a");
  sim::FicusHost* b = cluster.AddHost("b");
  auto volume = cluster.CreateVolume({a, b});
  auto logical = cluster.MountEverywhere(a, *volume);
  std::string contents(256 * 1024, 'x');
  (void)vfs::WriteFileAt(*logical, "big", contents);
  (void)b->RunPropagation();

  uint64_t before = 0;
  if (auto stats = b->propagation_stats(*volume); stats.has_value()) {
    before = stats->apply_bytes_written;
  }
  for (size_t i = 0; i < kBlock; ++i) {
    contents[128 * 1024 + i] = 'y';
  }
  (void)vfs::WriteFileAt(*logical, "big", contents);
  (void)b->RunPropagation();

  ApplyRun run;
  if (auto stats = b->propagation_stats(*volume); stats.has_value()) {
    run.apply_bytes = stats->apply_bytes_written - before;
  }
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
  return run;
}

}  // namespace

int main() {
  std::printf("Experiment U2 — commit write amplification for a %d-byte-block\n",
              static_cast<int>(kBlock));
  std::printf("update installed into a file of size S (section 3.2 footnote 5\n");
  std::printf("vs the section 7 storage-layer commit)\n\n");
  std::printf("%12s %6s | %8s %14s | %8s %14s | %10s\n", "file size", "dirty",
              "shadow", "shadow bytes", "delta", "delta bytes", "reduction");
  std::printf("%12s %6s | %8s %14s | %8s %14s | %10s\n", "", "blocks", "writes",
              "", "writes", "", "");

  // FICUS_BENCH_SMOKE=1 (CI) shrinks the sweep to a correctness check:
  // same code paths, same JSON shape, a fraction of the runtime. 1 MiB
  // stays in the smoke sweep — the acceptance floor is checked there.
  const bool smoke = std::getenv("FICUS_BENCH_SMOKE") != nullptr;
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{64 * 1024, 1024 * 1024}
            : std::vector<size_t>{16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024,
                                  4 * 1024 * 1024 - 2 * kBlock};
  const std::vector<int> dirty_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 16};

  std::ostringstream json;
  json << "{\"bench\":\"commit\",\"block_size\":" << kBlock << ",\"rows\":[";
  bool first = true;
  uint64_t delta_1dirty_min = ~0ull, delta_1dirty_max = 0;
  double reduction_at_1mib = 0.0;
  for (size_t size : sizes) {
    const size_t blocks = (size + kBlock - 1) / kBlock;
    for (int dirty : dirty_counts) {
      if (static_cast<size_t>(dirty) > blocks) {
        continue;  // a 16-block edit to a 4-block file is not a sweep point
      }
      CommitRun shadow = MeasureInstall(/*delta=*/false, size, dirty);
      CommitRun delta = MeasureInstall(/*delta=*/true, size, dirty);
      double reduction = delta.device_bytes == 0
                             ? 0.0
                             : static_cast<double>(shadow.device_bytes) /
                                   static_cast<double>(delta.device_bytes);
      std::printf("%12zu %6d | %8llu %14llu | %8llu %14llu | %9.1fx\n", size, dirty,
                  static_cast<unsigned long long>(shadow.device_writes),
                  static_cast<unsigned long long>(shadow.device_bytes),
                  static_cast<unsigned long long>(delta.device_writes),
                  static_cast<unsigned long long>(delta.device_bytes), reduction);
      if (!first) json << ",";
      first = false;
      json << "{\"file_size\":" << size << ",\"dirty_blocks\":" << dirty
           << ",\"shadow\":{\"device_writes\":" << shadow.device_writes
           << ",\"device_bytes\":" << shadow.device_bytes
           << ",\"wall_us\":" << shadow.wall_us << "}"
           << ",\"delta\":{\"device_writes\":" << delta.device_writes
           << ",\"device_bytes\":" << delta.device_bytes
           << ",\"wall_us\":" << delta.wall_us << "}"
           << ",\"reduction\":" << reduction << "}";
      if (dirty == 1) {
        delta_1dirty_min = std::min(delta_1dirty_min, delta.device_bytes);
        delta_1dirty_max = std::max(delta_1dirty_max, delta.device_bytes);
        if (size == 1024 * 1024) {
          reduction_at_1mib = reduction;
        }
      }
    }
  }
  json << "]";

  // End-to-end runtime comparison: the commit protocol is
  // runtime-independent, so the apply-side device bytes must agree
  // exactly; only wall clock may differ.
  std::printf("\nRuntime comparison — 1-block edit into 256 KiB, notify+pull+commit\n");
  std::printf("%14s | %14s %10s\n", "runtime", "apply bytes", "wall ms");
  json << ",\"runtime_comparison\":{\"file_size\":" << 256 * 1024 << ",\"modes\":[";
  ApplyRun per_mode[2];
  for (int i = 0; i < 2; ++i) {
    RuntimeOptions mode_options;
    mode_options.mode = (i == 0) ? RuntimeMode::kDeterministic : RuntimeMode::kThreaded;
    per_mode[i] = RunClusterEdit(mode_options);
    std::printf("%14s | %14llu %10.2f\n", RuntimeModeName(mode_options.mode),
                static_cast<unsigned long long>(per_mode[i].apply_bytes),
                per_mode[i].wall_ms);
    if (i != 0) json << ",";
    json << "{\"runtime\":\"" << RuntimeModeName(mode_options.mode)
         << "\",\"apply_bytes\":" << per_mode[i].apply_bytes
         << ",\"wall_ms\":" << per_mode[i].wall_ms << "}";
  }
  const bool apply_match = per_mode[0].apply_bytes == per_mode[1].apply_bytes;
  json << "],\"apply_bytes_match\":" << (apply_match ? "true" : "false") << "}";
  std::printf("apply bytes %s across runtimes\n", apply_match ? "match" : "DIFFER");

  json << "}";
  std::ofstream out("BENCH_commit.json");
  out << json.str() << "\n";
  std::printf("\nwrote BENCH_commit.json\n");

  // Acceptance floors (ISSUE 9): a 1-block update's delta cost must be
  // flat in file size, and at 1 MiB the shadow path must cost >= 16x as
  // much. Fail the bench, not just the gate, if the property regresses.
  bool ok = true;
  if (delta_1dirty_max > 2 * delta_1dirty_min) {
    std::fprintf(stderr,
                 "FAIL: 1-block delta commit is not flat in file size "
                 "(%llu..%llu bytes)\n",
                 static_cast<unsigned long long>(delta_1dirty_min),
                 static_cast<unsigned long long>(delta_1dirty_max));
    ok = false;
  }
  if (reduction_at_1mib < 16.0) {
    std::fprintf(stderr, "FAIL: reduction at 1 MiB is %.1fx, need >= 16x\n",
                 reduction_at_1mib);
    ok = false;
  }
  if (!apply_match) {
    std::fprintf(stderr, "FAIL: apply bytes differ across runtimes\n");
    ok = false;
  }

  std::printf("\nShape check vs paper: the shadow path's cost scales with file size\n"
              "while the block-remap commit tracks the dirty set — closing the\n"
              "penalty footnote 5 attributes to leaving the UFS unmodified, with\n"
              "the \"commit function in the storage layer\" section 7 asks for.\n");
  return ok ? 0 : 1;
}
