// Comparison with the Deceit design point (paper section 1): "The Deceit
// file system allows partitioned update without a quorum, but has no
// mechanism for reconciling concurrent updates to replicas of a single
// directory."
//
// Both systems accept partitioned updates; the difference is what happens
// to the *namespace* afterwards. This bench runs identical partitioned
// workloads under two repair regimes:
//   Ficus  — update notification + full directory reconciliation;
//   Deceit — file propagation only (directory merges disabled), i.e. the
//            namespace converges only when one side's directory version
//            happens to dominate — concurrent directory updates strand
//            entries on one side forever.
#include <cstdio>
#include <set>
#include <string>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

struct Outcome {
  int files_created = 0;
  int visible_everywhere = 0;
  int stranded = 0;  // exist on some replica but not all
};

Outcome RunWorkload(bool reconcile_directories, int cycles) {
  sim::Cluster cluster;
  sim::FicusHost* a = cluster.AddHost("a");
  sim::FicusHost* b = cluster.AddHost("b");
  auto volume = cluster.CreateVolume({a, b});
  auto fs_a = cluster.MountEverywhere(a, *volume);
  auto fs_b = cluster.MountEverywhere(b, *volume);
  (void)vfs::MkdirAll(*fs_a, "shared");
  (void)cluster.ReconcileUntilQuiescent();

  Outcome outcome;
  std::set<std::string> paths;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    cluster.Partition({{a}, {b}});
    // Both sides add files to the same directory, concurrently.
    std::string pa = "shared/a" + std::to_string(cycle);
    std::string pb = "shared/b" + std::to_string(cycle);
    (void)vfs::WriteFileAt(*fs_a, pa, "from a");
    (void)vfs::WriteFileAt(*fs_b, pb, "from b");
    paths.insert(pa);
    paths.insert(pb);
    cluster.Heal();
    if (reconcile_directories) {
      (void)cluster.ReconcileUntilQuiescent();
    } else {
      // Deceit regime: only the file-content fast path runs; concurrent
      // directory versions have no merge mechanism.
      (void)cluster.RunPropagationEverywhere();
    }
  }

  outcome.files_created = static_cast<int>(paths.size());
  for (const std::string& path : paths) {
    bool on_a = vfs::Exists(*fs_a, path);
    // Check b's own replica in isolation.
    cluster.Partition({{b}});
    bool on_b = vfs::Exists(*fs_b, path);
    cluster.Heal();
    if (on_a && on_b) {
      ++outcome.visible_everywhere;
    } else {
      ++outcome.stranded;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("Deceit comparison — concurrent directory updates with and without\n");
  std::printf("a directory reconciliation mechanism (section 1)\n\n");
  std::printf("%-34s %10s %14s %10s\n", "regime", "created", "on all replicas", "stranded");
  for (int cycles : {4, 8, 16}) {
    Outcome ficus = RunWorkload(/*reconcile_directories=*/true, cycles);
    Outcome deceit = RunWorkload(/*reconcile_directories=*/false, cycles);
    std::printf("%-34s %10d %14d %10d\n",
                ("Ficus, " + std::to_string(cycles) + " partition cycles").c_str(),
                ficus.files_created, ficus.visible_everywhere, ficus.stranded);
    std::printf("%-34s %10d %14d %10d\n",
                ("Deceit-like, " + std::to_string(cycles) + " cycles").c_str(),
                deceit.files_created, deceit.visible_everywhere, deceit.stranded);
  }
  std::printf("\nShape check vs paper: without a directory reconciliation mechanism,\n"
              "every partition cycle strands the minority side's namespace entries;\n"
              "Ficus's entry-level merge recovers all of them (section 1's critique\n"
              "of Deceit, and the reason sections 3.3's machinery exists).\n");
  return 0;
}
