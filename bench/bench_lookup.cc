// Experiment L1: pathname translation cost. The paper's stack pays for a
// lookup with a directory read and a linear scan at every layer; this PR
// adds the three classic remedies — a dnlc-style name cache at the
// logical layer, a hashed on-disk directory format, and a batched
// readdirplus — and this bench quantifies each:
//
//   * wide sweep: 10^3..10^6 files, flat directory; per-lookup cost with
//     the cache disabled (uncached), after a Clear() (cold), and on
//     repeat (warm);
//   * deep sweep: one file at the bottom of a d-level directory chain;
//     full-path resolution cost uncached vs warm;
//   * readdirplus: RPCs for an `ls -l` scan of a remote directory, the
//     N+1 pattern (readdir + per-entry lookup + getattr) vs one batched
//     ReaddirPlus;
//   * runtime comparison: the same warm workload under the deterministic
//     and threaded runtimes, with hit counts required to match.
//
// Wall-clock leaves (_us keys, speedup) are volatile; hit/miss/RPC
// counters are deterministic and gated against bench/baselines/lookup.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/repl/logical.h"
#include "src/repl/physical.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

double ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

// The full wide sweep takes minutes at 10^6 files; phase marks on stderr
// (unbuffered, unlike the piped stdout tables) show where the time goes.
void Progress(const char* phase, size_t n) {
  static const auto t0 = std::chrono::steady_clock::now();
  std::fprintf(stderr, "[%7.1fs] %s (n=%zu)\n", ElapsedUs(t0) / 1e6, phase, n);
}

// Host sized for a `files`-entry namespace with attributes in the inode
// extension area (no aux files), so the sweep is bounded by directory
// I/O, not by artifacts of the default tiny-disk config.
sim::HostConfig ConfigFor(size_t files) {
  sim::HostConfig config;
  config.inode_count = static_cast<uint32_t>(files + files / 4 + 8192);
  config.disk_blocks = std::max<uint32_t>(16 * 1024, static_cast<uint32_t>(files / 2) + 16384);
  config.cache_blocks = files >= 100000 ? 16384 : 2048;
  config.physical.attr_placement = repl::AttrPlacement::kInode;
  return config;
}

std::vector<std::string> MakeNames(size_t files) {
  std::vector<std::string> names;
  names.reserve(files);
  for (size_t i = 0; i < files; ++i) {
    names.push_back("f" + std::to_string(i));
  }
  return names;
}

// One populated single-host volume: logical layer + root vnode.
struct Fixture {
  std::unique_ptr<sim::Cluster> cluster;
  repl::LogicalLayer* logical = nullptr;
  vfs::VnodePtr root;
};

Fixture MakeFlatFixture(size_t files, const RuntimeOptions& runtime) {
  Fixture fx;
  fx.cluster = std::make_unique<sim::Cluster>(runtime);
  sim::FicusHost* a = fx.cluster->AddHost("a", ConfigFor(files));
  auto volume = fx.cluster->CreateVolume({a});
  fx.logical = *fx.cluster->MountEverywhere(a, *volume);
  auto* phys = dynamic_cast<repl::PhysicalLayer*>(*a->Access(*volume, 1));
  auto created = phys->CreateChildren(repl::kRootFileId, MakeNames(files),
                                      repl::FicusFileType::kRegular, /*owner_uid=*/1);
  if (!created.ok()) {
    std::fprintf(stderr, "populate(%zu) failed: %s\n", files,
                 created.status().ToString().c_str());
    std::exit(2);
  }
  fx.root = *fx.logical->Root();
  return fx;
}

struct WideRow {
  size_t files = 0;
  size_t sample = 0;           // lookups per timed mode
  double uncached_us = 0;      // per lookup, cache disabled
  double cold_us = 0;          // per lookup, first touch after Clear()
  double warm_us = 0;          // per lookup, repeat of the same names
  double speedup = 0;          // uncached_us / warm_us
  uint64_t warm_hits = 0;      // deterministic: cache hits in the warm pass
  uint64_t cold_misses = 0;    // deterministic: misses in the cold pass
};

// Evenly strided sample of `count` names out of `files`.
std::vector<std::string> SampleNames(size_t files, size_t count) {
  std::vector<std::string> sample;
  sample.reserve(count);
  const size_t stride = std::max<size_t>(1, files / count);
  for (size_t i = 0; i < count; ++i) {
    sample.push_back("f" + std::to_string((i * stride) % files));
  }
  return sample;
}

double TimeLookups(const vfs::VnodePtr& root, const std::vector<std::string>& names) {
  auto start = std::chrono::steady_clock::now();
  for (const std::string& name : names) {
    auto child = root->Lookup(name, {});
    if (!child.ok()) {
      std::fprintf(stderr, "lookup %s failed: %s\n", name.c_str(),
                   child.status().ToString().c_str());
      std::exit(2);
    }
  }
  return ElapsedUs(start) / static_cast<double>(names.size());
}

WideRow MeasureWide(size_t files, const RuntimeOptions& runtime) {
  Progress("wide: populate", files);
  Fixture fx = MakeFlatFixture(files, runtime);
  repl::NameCache* cache = fx.logical->name_cache();

  WideRow row;
  row.files = files;
  // The uncached pass re-reads and re-scans the directory per lookup —
  // O(files) each — so it gets a smaller sample at the big sizes.
  const size_t warm_sample = std::min<size_t>(files, 512);
  const size_t uncached_sample = files >= 100000 ? 32 : std::min<size_t>(files, 256);
  row.sample = warm_sample;

  Progress("wide: uncached pass", uncached_sample);
  cache->set_enabled(false);
  row.uncached_us = TimeLookups(fx.root, SampleNames(files, uncached_sample));

  Progress("wide: cold pass", warm_sample);
  cache->set_enabled(true);
  cache->Clear();
  std::vector<std::string> sample = SampleNames(files, warm_sample);
  repl::NameCacheStats before = cache->stats();
  row.cold_us = TimeLookups(fx.root, sample);
  repl::NameCacheStats after_cold = cache->stats();
  row.cold_misses = after_cold.misses - before.misses;

  Progress("wide: warm pass", warm_sample);
  row.warm_us = TimeLookups(fx.root, sample);
  repl::NameCacheStats after_warm = cache->stats();
  row.warm_hits = after_warm.hits - after_cold.hits;
  row.speedup = row.warm_us > 0 ? row.uncached_us / row.warm_us : 0;
  return row;
}

struct DeepRow {
  size_t depth = 0;
  double uncached_us = 0;  // per full-path resolution
  double warm_us = 0;
  double speedup = 0;
};

double TimePathWalks(const vfs::VnodePtr& root, const std::vector<std::string>& components,
                     int reps) {
  auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    vfs::VnodePtr node = root;
    for (const std::string& component : components) {
      auto next = node->Lookup(component, {});
      if (!next.ok()) {
        std::fprintf(stderr, "walk %s failed: %s\n", component.c_str(),
                     next.status().ToString().c_str());
        std::exit(2);
      }
      node = *next;
    }
  }
  return ElapsedUs(start) / reps;
}

DeepRow MeasureDeep(size_t depth, const RuntimeOptions& runtime) {
  Progress("deep: walk", depth);
  Fixture fx;
  fx.cluster = std::make_unique<sim::Cluster>(runtime);
  sim::FicusHost* a = fx.cluster->AddHost("a", ConfigFor(4 * depth + 64));
  auto volume = fx.cluster->CreateVolume({a});
  fx.logical = *fx.cluster->MountEverywhere(a, *volume);
  fx.root = *fx.logical->Root();

  std::string path;
  std::vector<std::string> components;
  for (size_t d = 0; d < depth; ++d) {
    components.push_back("d" + std::to_string(d));
    path += (d == 0 ? "" : "/") + components.back();
  }
  (void)vfs::MkdirAll(fx.logical, path);
  (void)vfs::WriteFileAt(fx.logical, path + "/leaf", "x");
  components.push_back("leaf");

  DeepRow row;
  row.depth = depth;
  const int reps = 64;
  repl::NameCache* cache = fx.logical->name_cache();
  cache->set_enabled(false);
  row.uncached_us = TimePathWalks(fx.root, components, reps);
  cache->set_enabled(true);
  cache->Clear();
  (void)TimePathWalks(fx.root, components, 1);  // fill pass
  row.warm_us = TimePathWalks(fx.root, components, reps);
  row.speedup = row.warm_us > 0 ? row.uncached_us / row.warm_us : 0;
  return row;
}

struct ScanResult {
  size_t entries = 0;
  uint64_t n_plus_1_rpcs = 0;      // readdir + per-entry lookup + getattr
  uint64_t readdirplus_rpcs = 0;   // one batched call
  double rpc_reduction = 0;
};

// `ls -l` over a REMOTE directory: the mounting host stores no replica,
// so every physical operation is an RPC and the N+1 pattern's cost is
// visible in the transport counters.
ScanResult MeasureScan(size_t entries, const RuntimeOptions& runtime) {
  Progress("scan: ls -l", entries);
  sim::Cluster cluster(runtime);
  sim::FicusHost* server = cluster.AddHost("server", ConfigFor(entries));
  sim::FicusHost* client = cluster.AddHost("client", ConfigFor(entries));
  auto volume = cluster.CreateVolume({server});
  auto* phys = dynamic_cast<repl::PhysicalLayer*>(*server->Access(*volume, 1));
  auto created = phys->CreateChildren(repl::kRootFileId, MakeNames(entries),
                                      repl::FicusFileType::kRegular, /*owner_uid=*/1);
  if (!created.ok()) {
    std::fprintf(stderr, "populate(%zu) failed: %s\n", entries,
                 created.status().ToString().c_str());
    std::exit(2);
  }
  repl::LogicalLayer* logical = *cluster.MountEverywhere(client, *volume);
  vfs::VnodePtr root = *logical->Root();

  ScanResult result;
  result.entries = entries;
  uint64_t rpcs_before = client->metrics().CounterValue("nfs.client.rpcs");
  auto listing = *root->Readdir({});
  for (const auto& entry : listing) {
    auto child = root->Lookup(entry.name, {});
    if (child.ok()) {
      (void)(*child)->GetAttr({});
    }
  }
  result.n_plus_1_rpcs = client->metrics().CounterValue("nfs.client.rpcs") - rpcs_before;

  rpcs_before = client->metrics().CounterValue("nfs.client.rpcs");
  auto plus = *root->ReaddirPlus({});
  result.readdirplus_rpcs = client->metrics().CounterValue("nfs.client.rpcs") - rpcs_before;
  if (plus.size() != listing.size()) {
    std::fprintf(stderr, "readdirplus rows %zu != readdir rows %zu\n", plus.size(),
                 listing.size());
    std::exit(2);
  }
  result.rpc_reduction = result.readdirplus_rpcs > 0
                             ? static_cast<double>(result.n_plus_1_rpcs) /
                                   static_cast<double>(result.readdirplus_rpcs)
                             : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  RuntimeOptions runtime;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runtime=threaded") == 0) {
      runtime.mode = RuntimeMode::kThreaded;
    } else if (std::strcmp(argv[i], "--runtime=deterministic") == 0) {
      runtime.mode = RuntimeMode::kDeterministic;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --runtime=threaded)\n", argv[i]);
      return 2;
    }
  }
  const bool smoke = std::getenv("FICUS_BENCH_SMOKE") != nullptr;

  std::printf("Experiment L1 — pathname translation: name cache, hashed dirs, readdirplus\n");
  std::printf("(runtime: %s)\n\n", RuntimeModeName(runtime.mode));

  std::ostringstream json;
  json << "{\"bench\":\"lookup\",\"runtime\":\"" << RuntimeModeName(runtime.mode)
       << "\",\"wide\":[";

  std::printf("Wide tree — flat directory, per-lookup microseconds\n");
  std::printf("%10s %8s | %12s %12s %12s | %9s | %10s %10s\n", "files", "sample",
              "uncached us", "cold us", "warm us", "speedup", "warm hits", "cold miss");
  const std::vector<size_t> sizes = smoke
                                        ? std::vector<size_t>{1000, 10000}
                                        : std::vector<size_t>{1000, 10000, 100000, 1000000};
  bool first = true;
  for (size_t files : sizes) {
    WideRow row = MeasureWide(files, runtime);
    std::printf("%10zu %8zu | %12.2f %12.2f %12.2f | %8.1fx | %10llu %10llu\n", row.files,
                row.sample, row.uncached_us, row.cold_us, row.warm_us, row.speedup,
                static_cast<unsigned long long>(row.warm_hits),
                static_cast<unsigned long long>(row.cold_misses));
    if (!first) json << ",";
    first = false;
    json << "{\"files\":" << row.files << ",\"sample\":" << row.sample
         << ",\"uncached_us\":" << row.uncached_us << ",\"cold_us\":" << row.cold_us
         << ",\"warm_us\":" << row.warm_us << ",\"speedup\":" << row.speedup
         << ",\"warm_hits\":" << row.warm_hits << ",\"cold_misses\":" << row.cold_misses
         << "}";
  }
  json << "],\"deep\":[";

  std::printf("\nDeep tree — full-path resolution, microseconds per walk\n");
  std::printf("%10s | %12s %12s | %9s\n", "depth", "uncached us", "warm us", "speedup");
  const std::vector<size_t> depths =
      smoke ? std::vector<size_t>{8} : std::vector<size_t>{16, 64};
  first = true;
  for (size_t depth : depths) {
    DeepRow row = MeasureDeep(depth, runtime);
    std::printf("%10zu | %12.2f %12.2f | %8.1fx\n", row.depth, row.uncached_us,
                row.warm_us, row.speedup);
    if (!first) json << ",";
    first = false;
    json << "{\"depth\":" << row.depth << ",\"uncached_us\":" << row.uncached_us
         << ",\"warm_us\":" << row.warm_us << ",\"speedup\":" << row.speedup << "}";
  }
  json << "]";

  const size_t scan_entries = smoke ? 1000 : 10000;
  std::printf("\nReaddirplus — RPCs for an ls -l scan of a %zu-entry remote directory\n",
              scan_entries);
  ScanResult scan = MeasureScan(scan_entries, runtime);
  std::printf("%12s: %llu RPCs\n", "N+1 scan",
              static_cast<unsigned long long>(scan.n_plus_1_rpcs));
  std::printf("%12s: %llu RPCs\n", "readdirplus",
              static_cast<unsigned long long>(scan.readdirplus_rpcs));
  std::printf("%12s: %.1fx fewer RPCs\n", "reduction", scan.rpc_reduction);
  json << ",\"readdirplus\":{\"entries\":" << scan.entries
       << ",\"n_plus_1_rpcs\":" << scan.n_plus_1_rpcs
       << ",\"readdirplus_rpcs\":" << scan.readdirplus_rpcs
       << ",\"rpc_reduction\":" << scan.rpc_reduction << "}";

  // Same warm workload under both runtimes; the protocols (and so the
  // hit counts) are runtime-independent, only the wall clock may move.
  const size_t cmp_files = smoke ? 1000 : 10000;
  std::printf("\nRuntime comparison — %zu files, warm lookups, both runtimes\n", cmp_files);
  std::printf("%14s | %12s %10s\n", "runtime", "warm us", "warm hits");
  json << ",\"runtime_comparison\":{\"files\":" << cmp_files << ",\"modes\":[";
  WideRow per_mode[2];
  for (int i = 0; i < 2; ++i) {
    RuntimeOptions mode_options;
    mode_options.mode = (i == 0) ? RuntimeMode::kDeterministic : RuntimeMode::kThreaded;
    per_mode[i] = MeasureWide(cmp_files, mode_options);
    std::printf("%14s | %12.2f %10llu\n", RuntimeModeName(mode_options.mode),
                per_mode[i].warm_us,
                static_cast<unsigned long long>(per_mode[i].warm_hits));
    if (i != 0) json << ",";
    json << "{\"runtime\":\"" << RuntimeModeName(mode_options.mode)
         << "\",\"warm_us\":" << per_mode[i].warm_us
         << ",\"warm_hits\":" << per_mode[i].warm_hits << "}";
  }
  const bool hits_match = per_mode[0].warm_hits == per_mode[1].warm_hits;
  json << "],\"hits_match\":" << (hits_match ? "true" : "false") << "}";
  std::printf("hit counts %s across runtimes\n", hits_match ? "match" : "DIFFER");

  json << "}";
  std::ofstream out("BENCH_lookup.json");
  out << json.str() << "\n";
  std::printf("\nwrote BENCH_lookup.json\n");
  std::printf("\nShape check: warm lookups cost the cache probe plus one attribute\n"
              "read regardless of directory size, where the uncached path re-reads\n"
              "and re-scans the directory per component; readdirplus collapses the\n"
              "2N+1 RPCs of a remote ls -l into one batched call.\n");
  return 0;
}
