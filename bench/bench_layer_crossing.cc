// Experiment P1 (paper section 6): "The actual cost of crossing a layer
// boundary is low — one additional procedure call, one pointer
// indirection, and storage for another vnode block."
//
// Measures vnode operations through stacks of 0..16 pass-through (null)
// layers over an in-memory filesystem, so the marginal cost per layer is
// isolated from any I/O. Also reports the full Ficus logical->physical
// stack against raw UFS for the same operation mix.
#include <benchmark/benchmark.h>

#include "src/repl/logical.h"
#include "src/repl/physical.h"
#include "src/storage/block_device.h"
#include "src/storage/buffer_cache.h"
#include "src/ufs/ufs.h"
#include "src/ufs/ufs_vfs.h"
#include "src/vfs/mem_vfs.h"
#include "src/vfs/pass_through.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

// GetAttr through N null layers: the purest layer-crossing measurement.
void BM_GetAttrThroughNullLayers(benchmark::State& state) {
  vfs::MemVfs base;
  auto top = vfs::StackNullLayers(&base, static_cast<int>(state.range(0)));
  if (!top.ok()) {
    state.SkipWithError("stack construction failed");
    return;
  }
  for (auto _ : state) {
    auto attr = (*top)->GetAttr();
    benchmark::DoNotOptimize(attr);
  }
  state.SetLabel(std::to_string(state.range(0)) + " layers");
}
BENCHMARK(BM_GetAttrThroughNullLayers)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Lookup + read of a small file through N null layers.
void BM_OpenReadThroughNullLayers(benchmark::State& state) {
  vfs::MemVfs base;
  if (!vfs::MkdirAll(&base, "dir").ok() ||
      !vfs::WriteFileAt(&base, "dir/file", std::string(1024, 'x')).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  auto base_root = base.Root();
  auto top = vfs::StackNullLayers(&base, static_cast<int>(state.range(0)));
  if (!top.ok()) {
    state.SkipWithError("stack construction failed");
    return;
  }
  vfs::Credentials cred;
  std::vector<uint8_t> out;
  for (auto _ : state) {
    auto dir = (*top)->Lookup("dir", cred);
    auto file = (*dir)->Lookup("file", cred);
    auto n = (*file)->Read(0, 1024, out, cred);
    benchmark::DoNotOptimize(n);
  }
  state.SetLabel(std::to_string(state.range(0)) + " layers");
}
BENCHMARK(BM_OpenReadThroughNullLayers)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

struct FicusStack {
  FicusStack()
      : device(16384), cache(&device, 2048), ufs(&cache, &clock) {
    (void)ufs.Format(2048);
    physical = std::make_unique<repl::PhysicalLayer>(&ufs, &clock);
    (void)physical->CreateVolume(repl::VolumeId{1, 1}, 1, "vol", true);
    resolver.Add(physical.get());
    logical = std::make_unique<repl::LogicalLayer>(repl::VolumeId{1, 1}, &resolver, nullptr,
                                                   nullptr, &clock);
  }

  struct MiniResolver : repl::ReplicaResolver {
    void Add(repl::PhysicalLayer* layer) { layer_ = layer; }
    std::vector<repl::ReplicaId> ReplicasOf(const repl::VolumeId&) override { return {1}; }
    StatusOr<repl::PhysicalApi*> Access(const repl::VolumeId&, repl::ReplicaId) override {
      return static_cast<repl::PhysicalApi*>(layer_);
    }
    repl::PhysicalLayer* layer_ = nullptr;
  };

  SimClock clock;
  storage::BlockDevice device;
  storage::BufferCache cache;
  ufs::Ufs ufs;
  std::unique_ptr<repl::PhysicalLayer> physical;
  MiniResolver resolver;
  std::unique_ptr<repl::LogicalLayer> logical;
};

// The same open+read mix against raw UFS (the monolithic baseline)...
void BM_OpenReadRawUfs(benchmark::State& state) {
  FicusStack stack;
  ufs::UfsVfs raw(&stack.ufs);
  (void)vfs::MkdirAll(&raw, "dir");
  (void)vfs::WriteFileAt(&raw, "dir/file", std::string(1024, 'x'));
  for (auto _ : state) {
    auto contents = vfs::OpenReadClose(&raw, "dir/file");
    benchmark::DoNotOptimize(contents);
  }
  state.SetLabel("raw UFS (monolithic)");
}
BENCHMARK(BM_OpenReadRawUfs);

// ...and through the full Ficus logical->physical stack on that UFS.
void BM_OpenReadFicusStack(benchmark::State& state) {
  FicusStack stack;
  (void)vfs::MkdirAll(stack.logical.get(), "dir");
  (void)vfs::WriteFileAt(stack.logical.get(), "dir/file", std::string(1024, 'x'));
  for (auto _ : state) {
    auto contents = vfs::OpenReadClose(stack.logical.get(), "dir/file");
    benchmark::DoNotOptimize(contents);
  }
  state.SetLabel("Ficus logical+physical over UFS");
}
BENCHMARK(BM_OpenReadFicusStack);

}  // namespace

BENCHMARK_MAIN();
