// Experiment P1 (paper section 6): "The actual cost of crossing a layer
// boundary is low — one additional procedure call, one pointer
// indirection, and storage for another vnode block."
//
// Measures vnode operations through stacks of 0..16 pass-through (null)
// layers over an in-memory filesystem, so the marginal cost per layer is
// isolated from any I/O. Also reports the full Ficus logical->physical
// stack against raw UFS for the same operation mix.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/repl/logical.h"
#include "src/repl/physical.h"
#include "src/storage/block_device.h"
#include "src/storage/buffer_cache.h"
#include "src/ufs/ufs.h"
#include "src/ufs/ufs_vfs.h"
#include "src/vfs/mem_vfs.h"
#include "src/vfs/pass_through.h"
#include "src/vfs/path_ops.h"
#include "src/vfs/trace_layer.h"

namespace {

using namespace ficus;  // NOLINT

// GetAttr through N null layers: the purest layer-crossing measurement.
void BM_GetAttrThroughNullLayers(benchmark::State& state) {
  vfs::MemVfs base;
  auto top = vfs::StackNullLayers(&base, static_cast<int>(state.range(0)));
  if (!top.ok()) {
    state.SkipWithError("stack construction failed");
    return;
  }
  for (auto _ : state) {
    auto attr = (*top)->GetAttr();
    benchmark::DoNotOptimize(attr);
  }
  state.SetLabel(std::to_string(state.range(0)) + " layers");
}
BENCHMARK(BM_GetAttrThroughNullLayers)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Lookup + read of a small file through N null layers.
void BM_OpenReadThroughNullLayers(benchmark::State& state) {
  vfs::MemVfs base;
  if (!vfs::MkdirAll(&base, "dir").ok() ||
      !vfs::WriteFileAt(&base, "dir/file", std::string(1024, 'x')).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  auto base_root = base.Root();
  auto top = vfs::StackNullLayers(&base, static_cast<int>(state.range(0)));
  if (!top.ok()) {
    state.SkipWithError("stack construction failed");
    return;
  }
  vfs::Credentials cred;
  std::vector<uint8_t> out;
  for (auto _ : state) {
    auto dir = (*top)->Lookup("dir", cred);
    auto file = (*dir)->Lookup("file", cred);
    auto n = (*file)->Read(0, 1024, out, cred);
    benchmark::DoNotOptimize(n);
  }
  state.SetLabel(std::to_string(state.range(0)) + " layers");
}
BENCHMARK(BM_OpenReadThroughNullLayers)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

struct FicusStack {
  FicusStack()
      : device(16384), cache(&device, 2048), ufs(&cache, &clock) {
    (void)ufs.Format(2048);
    physical = std::make_unique<repl::PhysicalLayer>(&ufs, &clock);
    (void)physical->CreateVolume(repl::VolumeId{1, 1}, 1, "vol", true);
    resolver.Add(physical.get());
    logical = std::make_unique<repl::LogicalLayer>(repl::VolumeId{1, 1}, &resolver, nullptr,
                                                   nullptr, &clock);
  }

  struct MiniResolver : repl::ReplicaResolver {
    void Add(repl::PhysicalLayer* layer) { layer_ = layer; }
    std::vector<repl::ReplicaId> ReplicasOf(const repl::VolumeId&) override { return {1}; }
    StatusOr<repl::PhysicalApi*> Access(const repl::VolumeId&, repl::ReplicaId) override {
      return static_cast<repl::PhysicalApi*>(layer_);
    }
    repl::PhysicalLayer* layer_ = nullptr;
  };

  SimClock clock;
  storage::BlockDevice device;
  storage::BufferCache cache;
  ufs::Ufs ufs;
  std::unique_ptr<repl::PhysicalLayer> physical;
  MiniResolver resolver;
  std::unique_ptr<repl::LogicalLayer> logical;
};

// The same open+read mix against raw UFS (the monolithic baseline)...
void BM_OpenReadRawUfs(benchmark::State& state) {
  FicusStack stack;
  ufs::UfsVfs raw(&stack.ufs);
  (void)vfs::MkdirAll(&raw, "dir");
  (void)vfs::WriteFileAt(&raw, "dir/file", std::string(1024, 'x'));
  for (auto _ : state) {
    auto contents = vfs::OpenReadClose(&raw, "dir/file");
    benchmark::DoNotOptimize(contents);
  }
  state.SetLabel("raw UFS (monolithic)");
}
BENCHMARK(BM_OpenReadRawUfs);

// ...and through the full Ficus logical->physical stack on that UFS.
void BM_OpenReadFicusStack(benchmark::State& state) {
  FicusStack stack;
  (void)vfs::MkdirAll(stack.logical.get(), "dir");
  (void)vfs::WriteFileAt(stack.logical.get(), "dir/file", std::string(1024, 'x'));
  for (auto _ : state) {
    auto contents = vfs::OpenReadClose(stack.logical.get(), "dir/file");
    benchmark::DoNotOptimize(contents);
  }
  state.SetLabel("Ficus logical+physical over UFS");
}
BENCHMARK(BM_OpenReadFicusStack);

// --- per-layer attribution -------------------------------------------------
//
// The google-benchmark runs above give the end-to-end cost of an N-deep
// stack; this pass answers the finer question "where did the time go?"
// by slipping one TraceVfs onto every boundary (all sharing a registry)
// and running a fixed op mix. The self cost of boundary i is the time
// attributed below i minus the time attributed below i-1.

constexpr int kTraceBoundaries = 4;

// FICUS_BENCH_SMOKE=1 (CI) cuts the attribution passes to a correctness
// check: same code paths and JSON shape, a fraction of the runtime.
int TraceIterations() {
  static const int iterations =
      std::getenv("FICUS_BENCH_SMOKE") != nullptr ? 500 : 20000;
  return iterations;
}

struct LayerOpCost {
  std::string layer;
  std::string op;
  uint64_t calls = 0;
  double mean_ns = 0.0;
  double self_ns = 0.0;
};

// Runs the fixed mix through `kTraceBoundaries` traced null boundaries
// over MemVfs and returns the per-layer, per-op breakdown (top first).
std::vector<LayerOpCost> AttributeNullStack(MetricRegistry& registry) {
  vfs::MemVfs base;
  (void)vfs::MkdirAll(&base, "dir");
  (void)vfs::WriteFileAt(&base, "dir/file", std::string(1024, 'x'));

  std::vector<std::unique_ptr<vfs::TraceVfs>> layers;
  vfs::Vfs* lower = &base;
  for (int i = 1; i <= kTraceBoundaries; ++i) {
    layers.push_back(
        std::make_unique<vfs::TraceVfs>(lower, "l" + std::to_string(i), &registry));
    lower = layers.back().get();
  }
  vfs::Vfs* top = lower;

  vfs::OpContext ctx;
  std::vector<uint8_t> out;
  for (int i = 0; i < TraceIterations(); ++i) {
    ctx.trace = NextTraceId();
    auto root = top->Root();
    auto dir = (*root)->Lookup("dir", ctx);
    auto file = (*dir)->Lookup("file", ctx);
    auto attr = (*file)->GetAttr(ctx);
    benchmark::DoNotOptimize(attr);
    auto n = (*file)->Read(0, 1024, out, ctx);
    benchmark::DoNotOptimize(n);
  }

  const vfs::VnodeOp kOps[] = {vfs::VnodeOp::kLookup, vfs::VnodeOp::kGetAttr,
                               vfs::VnodeOp::kRead};
  std::vector<LayerOpCost> costs;
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {  // top first
    vfs::TraceVfs* layer = it->get();
    vfs::TraceVfs* below = (it + 1) != layers.rend() ? (it + 1)->get() : nullptr;
    for (vfs::VnodeOp op : kOps) {
      LayerOpCost cost;
      cost.layer = layer->sink().layer_name();
      cost.op = std::string(vfs::VnodeOpName(op));
      cost.calls = layer->sink().Calls(op);
      if (cost.calls > 0) {
        cost.mean_ns = static_cast<double>(layer->sink().TotalNs(op)) /
                       static_cast<double>(cost.calls);
        double below_mean =
            below == nullptr
                ? 0.0
                : static_cast<double>(below->sink().TotalNs(op)) /
                      static_cast<double>(below->sink().Calls(op));
        // The bottom boundary's "self" time includes the MemVfs work.
        cost.self_ns = cost.mean_ns - below_mean;
      }
      costs.push_back(cost);
    }
  }
  return costs;
}

// Open+read through the full Ficus stack vs raw UFS, each behind its own
// trace boundary, so the replication layers' self cost falls out as the
// difference of the two totals.
struct StackComparison {
  double logical_mean_ns = 0.0;
  double ufs_mean_ns = 0.0;
  double replication_self_ns = 0.0;
};

double TracedOpenReadMeanNs(vfs::Vfs* fs, std::string_view name,
                            MetricRegistry& registry) {
  vfs::TraceVfs traced(fs, name, &registry);
  for (int i = 0; i < TraceIterations() / 10; ++i) {
    auto contents = vfs::OpenReadClose(&traced, "dir/file");
    benchmark::DoNotOptimize(contents);
  }
  uint64_t total = 0;
  uint64_t calls = 0;
  for (size_t i = 0; i < static_cast<size_t>(vfs::VnodeOp::kCount); ++i) {
    total += traced.sink().TotalNs(static_cast<vfs::VnodeOp>(i));
    calls += traced.sink().Calls(static_cast<vfs::VnodeOp>(i));
  }
  (void)calls;
  return static_cast<double>(total) / (TraceIterations() / 10);
}

StackComparison AttributeFicusStack(MetricRegistry& registry) {
  StackComparison comparison;
  {
    FicusStack stack;
    ufs::UfsVfs raw(&stack.ufs);
    (void)vfs::MkdirAll(&raw, "dir");
    (void)vfs::WriteFileAt(&raw, "dir/file", std::string(1024, 'x'));
    comparison.ufs_mean_ns = TracedOpenReadMeanNs(&raw, "ufs", registry);
  }
  {
    FicusStack stack;
    (void)vfs::MkdirAll(stack.logical.get(), "dir");
    (void)vfs::WriteFileAt(stack.logical.get(), "dir/file", std::string(1024, 'x'));
    comparison.logical_mean_ns =
        TracedOpenReadMeanNs(stack.logical.get(), "logical", registry);
  }
  comparison.replication_self_ns =
      comparison.logical_mean_ns - comparison.ufs_mean_ns;
  return comparison;
}

void EmitJson(const std::vector<LayerOpCost>& costs, const StackComparison& comparison,
              MetricRegistry& registry) {
  std::ostringstream json;
  json << "{\"bench\":\"layer_crossing\",\"iterations\":" << TraceIterations()
       << ",\"boundaries\":" << kTraceBoundaries << ",\"per_layer\":[";
  for (size_t i = 0; i < costs.size(); ++i) {
    const LayerOpCost& cost = costs[i];
    if (i > 0) json << ",";
    json << "{\"layer\":\"" << cost.layer << "\",\"op\":\"" << cost.op
         << "\",\"calls\":" << cost.calls << ",\"mean_ns\":" << cost.mean_ns
         << ",\"self_ns\":" << cost.self_ns << "}";
  }
  json << "],\"ficus_stack\":{\"logical_mean_ns\":" << comparison.logical_mean_ns
       << ",\"ufs_mean_ns\":" << comparison.ufs_mean_ns
       << ",\"replication_self_ns\":" << comparison.replication_self_ns << "}"
       << ",\"metrics\":" << registry.ToJson() << "}";
  std::ofstream out("BENCH_layer_crossing.json");
  out << json.str() << "\n";
  std::printf("\nwrote BENCH_layer_crossing.json\n");
}

void RunAttribution() {
  MetricRegistry registry;
  std::vector<LayerOpCost> costs = AttributeNullStack(registry);
  StackComparison comparison = AttributeFicusStack(registry);

  std::printf("\nPer-layer attribution (%d traced null boundaries over MemVfs,\n"
              "%d iterations; self = this boundary's cost alone; the bottom\n"
              "boundary's self time includes the MemVfs work):\n\n",
              kTraceBoundaries, TraceIterations());
  std::printf("%8s %10s %10s %12s %12s\n", "layer", "op", "calls", "mean ns", "self ns");
  for (const LayerOpCost& cost : costs) {
    std::printf("%8s %10s %10llu %12.1f %12.1f\n", cost.layer.c_str(), cost.op.c_str(),
                static_cast<unsigned long long>(cost.calls), cost.mean_ns, cost.self_ns);
  }
  std::printf("\nFicus stack vs raw UFS (open+read+close, traced):\n"
              "  logical+physical over UFS: %10.1f ns/op\n"
              "  raw UFS:                   %10.1f ns/op\n"
              "  replication layers' self:  %10.1f ns/op\n",
              comparison.logical_mean_ns, comparison.ufs_mean_ns,
              comparison.replication_self_ns);
  EmitJson(costs, comparison, registry);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunAttribution();
  return 0;
}
