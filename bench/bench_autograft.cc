// Experiment G1 (paper section 4.4): autografting. First traversal of a
// graft point locates and grafts the volume (RPC cost); subsequent
// traversals hit the graft table; idle grafts are quietly pruned and
// re-grafted on demand.
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"
#include "src/vol/graft.h"

namespace {

using namespace ficus;  // NOLINT

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::printf("Experiment G1 — autograft cost: first walk vs grafted walk\n\n");
  std::printf("%10s %16s %16s %14s %14s\n", "volumes", "miss walk (ms)", "hit walk (ms)",
              "RPCs (miss)", "RPCs (hit)");

  for (int volumes : {1, 4, 16, 64}) {
    sim::Cluster cluster;
    sim::FicusHost* client = cluster.AddHost("client");
    sim::HostConfig server_config;
    server_config.disk_blocks = 1 << 16;
    server_config.inode_count = 1 << 14;
    sim::FicusHost* server = cluster.AddHost("server", server_config);
    auto root_volume = cluster.CreateVolume({client, server});
    auto logical = cluster.MountEverywhere(client, *root_volume);

    // One graft point per sub volume, each stored only on the server.
    repl::PhysicalLayer* phys = client->registry().LocalReplica(*root_volume);
    std::vector<repl::VolumeId> subs;
    for (int v = 0; v < volumes; ++v) {
      auto sub = cluster.CreateVolume({server});
      subs.push_back(*sub);
      vol::GraftPointInfo info;
      info.volume = *sub;
      info.replicas = {{1, server->id()}};
      (void)vol::WriteGraftPoint(phys, repl::kRootFileId, "mnt" + std::to_string(v), info);
      auto sub_logical = cluster.MountEverywhere(server, *sub);
      (void)vfs::WriteFileAt(*sub_logical, "data", "payload");
    }
    (void)cluster.ReconcileUntilQuiescent(4);

    // Miss pass: every graft point resolved for the first time.
    cluster.network().ResetStats();
    auto start = std::chrono::steady_clock::now();
    for (int v = 0; v < volumes; ++v) {
      (void)vfs::ReadFileAt(*logical, "mnt" + std::to_string(v) + "/data");
    }
    double miss_ms = MillisSince(start);
    uint64_t miss_rpcs = cluster.network().stats().rpcs_sent;

    // Hit pass: grafts already in the table.
    cluster.network().ResetStats();
    start = std::chrono::steady_clock::now();
    for (int v = 0; v < volumes; ++v) {
      (void)vfs::ReadFileAt(*logical, "mnt" + std::to_string(v) + "/data");
    }
    double hit_ms = MillisSince(start);
    uint64_t hit_rpcs = cluster.network().stats().rpcs_sent;

    std::printf("%10d %16.2f %16.2f %14llu %14llu\n", volumes, miss_ms, hit_ms,
                static_cast<unsigned long long>(miss_rpcs),
                static_cast<unsigned long long>(hit_rpcs));
  }

  // Prune / re-graft cycle.
  std::printf("\nGraft pruning: idle grafts dropped, transparently re-grafted on use\n");
  sim::Cluster cluster;
  sim::FicusHost* client = cluster.AddHost("client");
  sim::FicusHost* server = cluster.AddHost("server");
  auto root_volume = cluster.CreateVolume({client, server});
  auto logical = cluster.MountEverywhere(client, *root_volume);
  auto sub = cluster.CreateVolume({server});
  vol::GraftPointInfo info;
  info.volume = *sub;
  info.replicas = {{1, server->id()}};
  (void)vol::WriteGraftPoint(client->registry().LocalReplica(*root_volume),
                             repl::kRootFileId, "mnt", info);
  auto sub_logical = cluster.MountEverywhere(server, *sub);
  (void)vfs::WriteFileAt(*sub_logical, "data", "x");
  (void)cluster.ReconcileUntilQuiescent(4);

  (void)vfs::ReadFileAt(*logical, "mnt/data");
  size_t grafted = client->grafts().size();
  cluster.Sleep(600 * kSecond);
  int pruned = client->PruneGrafts(300 * kSecond);
  bool regrafts = vfs::ReadFileAt(*logical, "mnt/data").ok();
  std::printf("  grafts after first use: %zu, pruned after idle: %d, re-walk ok: %s\n",
              grafted, pruned, regrafts ? "yes" : "NO");
  std::printf("\nShape check vs paper: graft-table hits cost no location RPCs; the\n"
              "miss path pays one-time discovery per volume; pruning is invisible\n"
              "to clients (section 4.4).\n");
  return 0;
}
