// Experiments P2 / P3 (paper section 6):
//   "The Ficus physical layer design and implementation accrues additional
//    I/O overhead when opening a file in a non-recently accessed
//    directory. Four I/Os beyond the normal Unix overhead occur: an inode
//    and data page for the underlying Unix directory and an auxiliary
//    replication data file must be loaded from disk, as well as the Ficus
//    directory inode and data page. (The last two correspond to normal
//    Unix overhead.) Opening a recently accessed file or directory
//    involves no overhead not already incurred by the normal Unix file
//    system."
//
// This harness counts actual device reads for cold and warm opens through
// (a) the raw UFS and (b) the Ficus logical+physical stack on an identical
// namespace, and prints the measured extra I/Os next to the paper's claim.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/repl/logical.h"
#include "src/repl/physical.h"
#include "src/storage/block_device.h"
#include "src/storage/buffer_cache.h"
#include "src/ufs/ufs.h"
#include "src/ufs/ufs_vfs.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;  // NOLINT

struct MiniResolver : repl::ReplicaResolver {
  std::vector<repl::ReplicaId> ReplicasOf(const repl::VolumeId&) override { return {1}; }
  StatusOr<repl::PhysicalApi*> Access(const repl::VolumeId&, repl::ReplicaId) override {
    return static_cast<repl::PhysicalApi*>(layer);
  }
  repl::PhysicalLayer* layer = nullptr;
};

struct IoCounts {
  uint64_t cold_reads = 0;
  uint64_t warm_reads = 0;
  // `repl.physical.dir_cache.*` counters over the whole run (Ficus stacks
  // only) — how often the physical layer's parsed-directory cache spared a
  // UFS read-and-reparse.
  uint64_t dir_cache_hits = 0;
  uint64_t dir_cache_misses = 0;
};

// Builds a Ficus stack with the given attribute placement and measures
// cold/warm opens of dir/file with the shared prefix warmed.
IoCounts MeasureFicus(repl::AttrPlacement placement);

// Opens `path` once cold and once warm, counting device reads. "Cold"
// reproduces the paper's scenario — "opening a file in a non-recently
// accessed directory": the cache is dropped, then `warm_path` (a sibling
// subtree) is opened to reload the shared prefix (superblock, UFS root,
// volume container), so the counted reads are exactly the per-directory
// and per-file costs.
IoCounts MeasureOpen(vfs::Vfs* fs, storage::BufferCache* cache,
                     storage::BlockDevice* device, const std::string& path,
                     const std::string& warm_path) {
  IoCounts counts;
  cache->Invalidate();
  (void)vfs::OpenReadClose(fs, warm_path);
  device->ResetStats();
  auto cold = vfs::OpenReadClose(fs, path);
  if (!cold.ok()) {
    std::fprintf(stderr, "cold open failed: %s\n", cold.status().ToString().c_str());
    return counts;
  }
  counts.cold_reads = device->stats().reads;
  device->ResetStats();
  auto warm = vfs::OpenReadClose(fs, path);
  if (!warm.ok()) {
    std::fprintf(stderr, "warm open failed: %s\n", warm.status().ToString().c_str());
    return counts;
  }
  counts.warm_reads = device->stats().reads;
  return counts;
}

IoCounts MeasureFicus(repl::AttrPlacement placement) {
  static SimClock clock;
  storage::BlockDevice device(16384);
  storage::BufferCache cache(&device, 2048);
  ufs::Ufs ufs(&cache, &clock);
  (void)ufs.Format(2048);
  repl::PhysicalOptions options;
  options.attr_placement = placement;
  auto physical = std::make_unique<repl::PhysicalLayer>(&ufs, &clock, options);
  (void)physical->CreateVolume(repl::VolumeId{1, 1}, 1, "vol", true);
  MiniResolver resolver;
  resolver.layer = physical.get();
  repl::LogicalLayer logical(repl::VolumeId{1, 1}, &resolver, nullptr, nullptr, &clock);
  (void)vfs::MkdirAll(&logical, "other");
  (void)vfs::WriteFileAt(&logical, "other/file", std::string(100, 'x'));
  (void)vfs::MkdirAll(&logical, "filler");
  for (int i = 0; i < 64; ++i) {
    (void)vfs::WriteFileAt(&logical, "filler/f" + std::to_string(i), "");
  }
  (void)vfs::MkdirAll(&logical, "dir");
  (void)vfs::WriteFileAt(&logical, "dir/file", std::string(100, 'x'));
  IoCounts counts = MeasureOpen(&logical, &cache, &device, "dir/file", "other/file");
  repl::PhysicalStats stats = physical->stats();
  counts.dir_cache_hits = stats.dir_cache_hits;
  counts.dir_cache_misses = stats.dir_cache_misses;
  return counts;
}

// Warm-open throughput through the full Ficus stack: `threads` workers
// each perform `opens_per_thread` OpenReadClose calls on the same file.
// With one worker this is the deterministic (inline) cost; with several
// it exercises the vnode/physical/UFS/cache locking under contention.
double MeasureOpenThroughput(int threads, int opens_per_thread) {
  SimClock clock;
  storage::BlockDevice device(16384);
  storage::BufferCache cache(&device, 2048);
  ufs::Ufs ufs(&cache, &clock);
  (void)ufs.Format(2048);
  auto physical = std::make_unique<repl::PhysicalLayer>(&ufs, &clock);
  (void)physical->CreateVolume(repl::VolumeId{1, 1}, 1, "vol", true);
  MiniResolver resolver;
  resolver.layer = physical.get();
  repl::LogicalLayer logical(repl::VolumeId{1, 1}, &resolver, nullptr, nullptr, &clock);
  (void)vfs::MkdirAll(&logical, "dir");
  (void)vfs::WriteFileAt(&logical, "dir/file", std::string(100, 'x'));
  (void)vfs::OpenReadClose(&logical, "dir/file");  // warm the caches

  auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&logical, opens_per_thread] {
      for (int i = 0; i < opens_per_thread; ++i) {
        (void)vfs::OpenReadClose(&logical, "dir/file");
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - started)
                  .count();
  return ms <= 0.0 ? 0.0 : static_cast<double>(threads) * opens_per_thread / ms;
}

}  // namespace

int main(int argc, char** argv) {
  bool threaded = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runtime=threaded") == 0) {
      threaded = true;
    } else if (std::strcmp(argv[i], "--runtime=deterministic") == 0) {
      threaded = false;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --runtime=threaded)\n", argv[i]);
      return 2;
    }
  }

  SimClock clock;

  // --- raw UFS baseline ---
  storage::BlockDevice raw_device(16384);
  storage::BufferCache raw_cache(&raw_device, 2048);
  ufs::Ufs raw_ufs(&raw_cache, &clock);
  (void)raw_ufs.Format(2048);
  ufs::UfsVfs raw(&raw_ufs);
  (void)vfs::MkdirAll(&raw, "other");
  (void)vfs::WriteFileAt(&raw, "other/file", std::string(100, 'x'));
  // Filler allocations so the measured subtree's inodes do not share
  // inode-table blocks with the warmed sibling (real disks scatter them).
  (void)vfs::MkdirAll(&raw, "filler");
  for (int i = 0; i < 64; ++i) {
    (void)vfs::WriteFileAt(&raw, "filler/f" + std::to_string(i), "");
  }
  (void)vfs::MkdirAll(&raw, "dir");
  (void)vfs::WriteFileAt(&raw, "dir/file", std::string(100, 'x'));
  IoCounts unix_counts =
      MeasureOpen(&raw, &raw_cache, &raw_device, "dir/file", "other/file");

  // --- Ficus stacks on their own identical disks ---
  IoCounts ficus_counts = MeasureFicus(repl::AttrPlacement::kAuxFile);
  IoCounts inode_counts = MeasureFicus(repl::AttrPlacement::kInode);

  long long extra_cold = static_cast<long long>(ficus_counts.cold_reads) -
                         static_cast<long long>(unix_counts.cold_reads);
  long long extra_warm = static_cast<long long>(ficus_counts.warm_reads) -
                         static_cast<long long>(unix_counts.warm_reads);
  long long extra_cold_ext = static_cast<long long>(inode_counts.cold_reads) -
                             static_cast<long long>(unix_counts.cold_reads);

  std::printf("Experiment P2/P3 — open('dir/file') device-read counts (section 6)\n");
  std::printf("%-36s %12s %12s\n", "configuration", "cold reads", "warm reads");
  std::printf("%-36s %12llu %12llu\n", "raw UFS (normal Unix)",
              static_cast<unsigned long long>(unix_counts.cold_reads),
              static_cast<unsigned long long>(unix_counts.warm_reads));
  std::printf("%-36s %12llu %12llu\n", "Ficus (aux attribute files)",
              static_cast<unsigned long long>(ficus_counts.cold_reads),
              static_cast<unsigned long long>(ficus_counts.warm_reads));
  std::printf("%-36s %12llu %12llu\n", "Ficus (extensible inodes, section 7)",
              static_cast<unsigned long long>(inode_counts.cold_reads),
              static_cast<unsigned long long>(inode_counts.warm_reads));
  std::printf("\n");
  std::printf("extra I/Os, cold open:  paper = 4   measured = %lld\n", extra_cold);
  std::printf("extra I/Os, warm open:  paper = 0   measured = %lld\n", extra_warm);
  std::printf("extensible-inode ablation: extra cold I/Os fall to %lld — the paper's\n"
              "prediction that extensible inodes \"dispense with auxiliary files\"\n"
              "and eliminate most of the remaining overhead (section 7)\n",
              extra_cold_ext);
  std::printf("\nrepl.physical.dir_cache hit/miss over the run (warm opens are served\n"
              "from the parsed-directory cache instead of re-reading the UFS):\n");
  std::printf("%-36s %12s %12s\n", "configuration", "hits", "misses");
  std::printf("%-36s %12llu %12llu\n", "Ficus (aux attribute files)",
              static_cast<unsigned long long>(ficus_counts.dir_cache_hits),
              static_cast<unsigned long long>(ficus_counts.dir_cache_misses));
  std::printf("%-36s %12llu %12llu\n", "Ficus (extensible inodes, section 7)",
              static_cast<unsigned long long>(inode_counts.dir_cache_hits),
              static_cast<unsigned long long>(inode_counts.dir_cache_misses));
  std::printf("\n(The cold-open surplus is the underlying Unix directory used by the\n"
              " hex dual mapping plus the auxiliary attribute file; the Ficus\n"
              " directory file replaces the reads a normal Unix directory costs\n"
              " anyway. Inode-table clustering can shift individual counts by one\n"
              " I/O in either configuration — the same effect FFS cylinder groups\n"
              " produce — but the cold/warm shape is exactly the paper's.)\n");

  if (threaded) {
    // Recorded, not gated: warm opens/ms with one inline worker (the
    // deterministic runtime's cost) vs four concurrent workers fighting
    // over the same vnode/physical/UFS/cache locks.
    const int kOpens = 4000;
    double single = MeasureOpenThroughput(1, 4 * kOpens);
    double fourway = MeasureOpenThroughput(4, kOpens);
    std::printf("\nWarm-open throughput, deterministic vs threaded (opens/ms)\n");
    std::printf("%-36s %12.1f\n", "1 worker (inline)", single);
    std::printf("%-36s %12.1f\n", "4 workers (threaded)", fourway);
    std::printf("(same total opens; the gap is lock contention on one vnode)\n");
  }
  return 0;
}
