// Experiment A1 (paper section 1): "One-copy availability provides
// strictly greater availability than primary copy [2], voting [21],
// weighted voting [7], and quorum consensus [10]."
//
// Prints exact read/update availability per policy across replica counts
// and host-up probabilities (independent-failure model), then the
// partition model the paper's abstract motivates ("the frequency of
// communications outages rendering inaccessible some replicas").
#include <cstdio>
#include <memory>
#include <vector>

#include "src/baseline/availability.h"

namespace {

using namespace ficus;           // NOLINT
using namespace ficus::baseline;  // NOLINT

void PrintIndependentTable(int n, double p) {
  OneCopyPolicy one_copy;
  PrimaryCopyPolicy primary(0);
  MajorityVotingPolicy majority;
  QuorumConsensusPolicy quorum(static_cast<size_t>(n / 2),
                               static_cast<size_t>(n / 2 + 1));
  std::vector<int> weights(static_cast<size_t>(n), 1);
  weights[0] = 2;  // primary-weighted Gifford configuration
  int total = n + 1;
  auto weighted = WeightedVotingPolicy::Make(weights, total / 2, total / 2 + 1);

  std::printf("n=%d replicas, host up probability p=%.2f\n", n, p);
  std::printf("  %-28s %14s %16s\n", "policy", "read avail", "update avail");
  std::vector<const ReplicationPolicy*> policies = {&one_copy, &primary, &majority, &quorum};
  if (weighted.ok()) {
    policies.push_back(&weighted.value());
  }
  for (const ReplicationPolicy* policy : policies) {
    auto result = ComputeExact(*policy, n, p);
    if (!result.ok()) {
      continue;
    }
    std::printf("  %-28s %14.6f %16.6f\n", policy->Name().c_str(), result->read,
                result->update);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Experiment A1 — availability of replica-control policies (exact)\n");
  std::printf("================================================================\n\n");
  for (int n : {2, 3, 5, 7}) {
    for (double p : {0.90, 0.99}) {
      PrintIndependentTable(n, p);
    }
  }

  std::printf("Partition model (Monte-Carlo, 200k trials): reliable hosts\n");
  std::printf("(p=0.99) behind a network that splits in two with probability q\n\n");
  Rng rng(SeedFromEnvOr(20260705, "bench_availability"));
  OneCopyPolicy one_copy;
  MajorityVotingPolicy majority;
  PrimaryCopyPolicy primary(0);
  std::printf("  %-6s %-26s %14s %16s\n", "q", "policy", "read avail", "update avail");
  for (double q : {0.1, 0.3, 0.5}) {
    for (const ReplicationPolicy* policy :
         {static_cast<const ReplicationPolicy*>(&one_copy),
          static_cast<const ReplicationPolicy*>(&primary),
          static_cast<const ReplicationPolicy*>(&majority)}) {
      auto result = SimulatePartitioned(*policy, 5, 0.99, q, 200000, rng);
      std::printf("  %-6.1f %-26s %14.4f %16.4f\n", q, policy->Name().c_str(), result.read,
                  result.update);
    }
    std::printf("\n");
  }
  std::printf("Shape check vs paper: one-copy's update availability strictly\n"
              "dominates every serializable policy at every point above, and the\n"
              "gap widens as partitions become the failure mode.\n");
  return 0;
}
