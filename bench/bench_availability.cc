// Experiment A1 (paper section 1): "One-copy availability provides
// strictly greater availability than primary copy [2], voting [21],
// weighted voting [7], and quorum consensus [10]."
//
// Prints exact read/update availability per policy across replica counts
// and host-up probabilities (independent-failure model), then the
// partition model the paper's abstract motivates ("the frequency of
// communications outages rendering inaccessible some replicas").
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/baseline/availability.h"
#include "src/net/fault.h"
#include "src/sim/cluster.h"
#include "src/vfs/path_ops.h"

namespace {

using namespace ficus;           // NOLINT
using namespace ficus::baseline;  // NOLINT

void PrintIndependentTable(int n, double p) {
  OneCopyPolicy one_copy;
  PrimaryCopyPolicy primary(0);
  MajorityVotingPolicy majority;
  QuorumConsensusPolicy quorum(static_cast<size_t>(n / 2),
                               static_cast<size_t>(n / 2 + 1));
  std::vector<int> weights(static_cast<size_t>(n), 1);
  weights[0] = 2;  // primary-weighted Gifford configuration
  int total = n + 1;
  auto weighted = WeightedVotingPolicy::Make(weights, total / 2, total / 2 + 1);

  std::printf("n=%d replicas, host up probability p=%.2f\n", n, p);
  std::printf("  %-28s %14s %16s\n", "policy", "read avail", "update avail");
  std::vector<const ReplicationPolicy*> policies = {&one_copy, &primary, &majority, &quorum};
  if (weighted.ok()) {
    policies.push_back(&weighted.value());
  }
  for (const ReplicationPolicy* policy : policies) {
    auto result = ComputeExact(*policy, n, p);
    if (!result.ok()) {
      continue;
    }
    std::printf("  %-28s %14.6f %16.6f\n", policy->Name().c_str(), result->read,
                result->update);
  }
  std::printf("\n");
}

// --- cluster sweep: measured availability on the simulated system ---
// The analytic tables above assume independent host failures; this sweep
// measures the real stack — heartbeat membership, read-your-nearest
// selection, propagation skips — on a churning cluster. Replica hosts
// flap on staggered phases; a non-storing host reads and writes through
// its logical layer every round. Counts, not fractions, land in the JSON
// so the CI baseline gate holds them exactly (the whole run is a
// deterministic function of the fault schedule).
struct SweepRow {
  size_t hosts = 0;
  size_t rf = 0;
  int attempts = 0;
  int read_ok = 0;
  int write_ok = 0;
};

ficus::sim::HostConfig SweepHost() {
  ficus::sim::HostConfig config;
  config.disk_blocks = 2048;
  config.cache_blocks = 256;
  config.inode_count = 512;
  config.heartbeat = ficus::cluster::HeartbeatConfig{};
  // Short per-attempt patience: a down replica costs sim-milliseconds,
  // and the dead verdicts soon spare even that.
  config.transport_retry.rpc_timeout = 20 * ficus::kMillisecond;
  return config;
}

SweepRow RunClusterSweep(size_t host_count, size_t rf, int rounds) {
  using namespace ficus;  // NOLINT
  SweepRow row;
  row.hosts = host_count;
  row.rf = rf;
  sim::Cluster cluster;
  std::vector<sim::FicusHost*> hosts = cluster.AddHosts(host_count, SweepHost());
  auto volume = cluster.CreateVolumePlaced(rf, cluster::PlacementPolicy::kSpread);
  if (!volume.ok()) {
    return row;
  }
  // Reader/writer on the last host: spread placement lands the replicas
  // on hosts 0..rf-1, so the probing host stores nothing and every
  // access crosses the network.
  sim::FicusHost* prober = hosts.back();
  auto logical = cluster.MountEverywhere(prober, *volume);
  auto seed_mount = cluster.MountEverywhere(hosts[0], *volume);
  if (!logical.ok() || !seed_mount.ok()) {
    return row;
  }
  if (!vfs::WriteFileAt(seed_mount.value(), "probe", "payload").ok()) {
    return row;
  }
  (void)cluster.ReconcileUntilQuiescent(8);

  // Staggered flaps: each replica host goes dark 800ms out of every 2s,
  // phases spread across the period so higher RF always leaves someone
  // up. No probabilistic faults — the schedule alone drives the counts.
  net::FaultPlan plan(1);
  for (size_t i = 0; i < rf; ++i) {
    plan.AddFlap(hosts[i]->id(), 0,
                 /*first_down=*/(i * 2000 / rf) * kMillisecond,
                 /*down_for=*/800 * kMillisecond,
                 /*period=*/2 * kSecond);
  }
  cluster.InstallFaultPlan(std::move(plan));

  for (int round = 0; round < rounds; ++round) {
    cluster.Sleep(250 * kMillisecond);
    (void)cluster.PollHeartbeatsEverywhere();
    ++row.attempts;
    if (vfs::ReadFileAt(logical.value(), "probe").ok()) {
      ++row.read_ok;
    }
    if (vfs::WriteFileAt(logical.value(), "w" + std::to_string(round), "x").ok()) {
      ++row.write_ok;
    }
  }
  return row;
}

}  // namespace

int main() {
  std::printf("Experiment A1 — availability of replica-control policies (exact)\n");
  std::printf("================================================================\n\n");
  for (int n : {2, 3, 5, 7}) {
    for (double p : {0.90, 0.99}) {
      PrintIndependentTable(n, p);
    }
  }

  std::printf("Partition model (Monte-Carlo, 200k trials): reliable hosts\n");
  std::printf("(p=0.99) behind a network that splits in two with probability q\n\n");
  Rng rng(SeedFromEnvOr(20260705, "bench_availability"));
  OneCopyPolicy one_copy;
  MajorityVotingPolicy majority;
  PrimaryCopyPolicy primary(0);
  std::printf("  %-6s %-26s %14s %16s\n", "q", "policy", "read avail", "update avail");
  for (double q : {0.1, 0.3, 0.5}) {
    for (const ReplicationPolicy* policy :
         {static_cast<const ReplicationPolicy*>(&one_copy),
          static_cast<const ReplicationPolicy*>(&primary),
          static_cast<const ReplicationPolicy*>(&majority)}) {
      auto result = SimulatePartitioned(*policy, 5, 0.99, q, 200000, rng);
      std::printf("  %-6.1f %-26s %14.4f %16.4f\n", q, policy->Name().c_str(), result.read,
                  result.update);
    }
    std::printf("\n");
  }
  std::printf("Shape check vs paper: one-copy's update availability strictly\n"
              "dominates every serializable policy at every point above, and the\n"
              "gap widens as partitions become the failure mode.\n\n");

  // Measured availability on the simulated cluster: RF sweep under a
  // deterministic flap schedule (800ms dark out of every 2s per replica
  // host, staggered phases), read/write probes every 250ms from a
  // non-storing host. FICUS_BENCH_SMOKE=1 (CI) shrinks the sweep; the
  // emitted counts are exact and gated against bench/baselines.
  const bool smoke = std::getenv("FICUS_BENCH_SMOKE") != nullptr;
  const std::vector<size_t> host_counts =
      smoke ? std::vector<size_t>{10} : std::vector<size_t>{10, 50, 100};
  const int rounds = smoke ? 16 : 40;
  std::printf("Cluster sweep — measured availability under churn (%d probes,\n"
              "replica hosts flap 800ms/2s staggered, heartbeat membership on)\n\n",
              rounds);
  std::printf("  %6s %4s | %10s %10s\n", "hosts", "rf", "reads ok", "writes ok");
  std::ostringstream json;
  json << "{\"bench\":\"availability\",\"churn\":{\"period_ms\":2000,\"down_ms\":800},"
       << "\"rows\":[";
  bool first_row = true;
  bool shape_ok = true;
  for (size_t host_count : host_counts) {
    SweepRow rf1;
    for (size_t rf : {1, 2, 3, 4}) {
      SweepRow row = RunClusterSweep(host_count, rf, rounds);
      if (rf == 1) {
        rf1 = row;
      }
      std::printf("  %6zu %4zu | %6d/%-3d %6d/%-3d\n", row.hosts, row.rf, row.read_ok,
                  row.attempts, row.write_ok, row.attempts);
      if (!first_row) json << ",";
      first_row = false;
      json << "{\"hosts\":" << row.hosts << ",\"rf\":" << row.rf
           << ",\"attempts\":" << row.attempts << ",\"read_ok\":" << row.read_ok
           << ",\"write_ok\":" << row.write_ok << "}";
      // The availability story this repo exists to reproduce: more
      // replicas must never read worse than one under the same churn.
      if (rf == 4 && (row.read_ok < rf1.read_ok || row.write_ok < rf1.write_ok)) {
        shape_ok = false;
      }
    }
    std::printf("\n");
  }
  json << "],\"rf_dominates\":" << (shape_ok ? "true" : "false") << "}";
  std::ofstream out("BENCH_availability.json");
  out << json.str() << "\n";
  std::printf("wrote BENCH_availability.json\n");
  std::printf("Shape check: RF 4 %s RF 1 under identical churn.\n",
              shape_ok ? "dominates" : "DOES NOT DOMINATE");
  return shape_ok ? 0 : 1;
}
